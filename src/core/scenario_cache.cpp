// Scenario::build_cached — the config-keyed snapshot cache on top of rp::io.
//
// The world is fully determined by its config (including the seed), so the
// cache key is a digest of the canonical config encoding and a hit can be
// trusted byte-for-byte once the container checksums pass. Any rejection —
// corrupt file, truncation, future format version, injected fault, or a
// digest that does not match the requested config after decode — falls back
// to a clean rebuild and recaches atomically, so a bad snapshot can delay a
// run but never corrupt it. Fallbacks are visible as rp.io.fallbacks (and
// rp.core.cache.fallbacks); the fault sites cache.load / cache.store inject
// failure at the cache boundary itself, on top of whatever the io.* sites do
// deeper down.
#include <exception>

#include "core/scenario.hpp"
#include "fault/fault.hpp"
#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::core {

namespace {
obs::Counter& cache_counter(SnapshotCacheResult::Outcome outcome) {
  static obs::Counter hits("rp.core.cache.hits");
  static obs::Counter misses("rp.core.cache.misses");
  static obs::Counter fallbacks("rp.core.cache.fallbacks");
  switch (outcome) {
    case SnapshotCacheResult::Outcome::kHit:
      return hits;
    case SnapshotCacheResult::Outcome::kFallback:
      return fallbacks;
    case SnapshotCacheResult::Outcome::kMiss:
      break;
  }
  return misses;
}
}  // namespace

Scenario Scenario::build_cached(const ScenarioConfig& config,
                                const std::filesystem::path& cache_dir,
                                SnapshotCacheResult* result) {
  obs::Span span("core.scenario.build_cached");
  static fault::Site load_site(fault::kSiteCacheLoad);
  static fault::Site store_site(fault::kSiteCacheStore);
  SnapshotCacheResult local;
  SnapshotCacheResult& out = result != nullptr ? *result : local;
  out = SnapshotCacheResult{};
  out.path = io::cache_path(config, cache_dir);

  std::error_code ec;
  if (std::filesystem::exists(out.path, ec)) {
    try {
      load_site.maybe_throw();
      io::LoadedWorld world = io::load_scenario(out.path);
      if (io::config_digest(world.scenario.config()) ==
          io::config_digest(config)) {
        out.outcome = SnapshotCacheResult::Outcome::kHit;
        cache_counter(out.outcome).add();
        return std::move(world.scenario);
      }
      // A digest collision in the file name (or a hand-renamed file): the
      // snapshot is valid but describes a different world.
      out.message = "snapshot describes a different config";
    } catch (const std::exception& e) {
      out.message = e.what();
    }
    out.outcome = SnapshotCacheResult::Outcome::kFallback;
    // The io-layer degradation counter CI asserts on: a snapshot that failed
    // to load was absorbed by a clean rebuild, not propagated.
    static obs::Counter io_fallbacks("rp.io.fallbacks");
    io_fallbacks.add();
  }

  cache_counter(out.outcome).add();
  Scenario scenario = build(config);
  // Cache-write failures (read-only dir, disk full, injected fault) must not
  // fail the build; the next run just misses again.
  try {
    store_site.maybe_throw();
    std::filesystem::create_directories(cache_dir);
    io::save_scenario(scenario, out.path);
  } catch (const std::exception& e) {
    if (out.message.empty()) out.message = e.what();
  }
  return scenario;
}

}  // namespace rp::core

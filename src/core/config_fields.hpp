// Config-from-spec plumbing: a registry of the sweepable ScenarioConfig
// fields, addressable by dotted name ("seed", "topology.access_count", ...).
//
// The sweep engine (src/sweep), rpsweep specs, and any future config file
// format all need the same two operations — set a field from a string token
// and read it back in canonical form — without every tool growing its own
// if/else ladder over the config struct. The registry keeps the mapping in
// one place; adding a ScenarioConfig knob means adding one table row here.
//
// Parsing is strict: the whole token must be consumed and the value must be
// in range, otherwise std::invalid_argument names the field and the
// offending token (sweep specs surface these messages with line numbers).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "core/scenario.hpp"

namespace rp::core {

/// One settable/readable ScenarioConfig field.
struct ConfigField {
  std::string_view name;         ///< Dotted name, e.g. "topology.tier2_count".
  std::string_view description;  ///< One line, for `rpsweep fields` and docs.
  void (*set)(ScenarioConfig&, std::string_view value);
  std::string (*get)(const ScenarioConfig&);
};

/// Every registered field, sorted by name.
std::span<const ConfigField> scenario_config_fields();

/// Looks a field up by name; nullptr when unknown.
const ConfigField* find_config_field(std::string_view name);

/// Sets `name` to `value` on `config`. Throws std::invalid_argument naming
/// the field when the name is unknown or the value does not parse.
void set_config_field(ScenarioConfig& config, std::string_view name,
                      std::string_view value);

/// Reads a field back in canonical token form (what set_config_field
/// accepts). Throws std::invalid_argument when the name is unknown.
std::string get_config_field(const ScenarioConfig& config,
                             std::string_view name);

/// The shared "fast" shrink used by rpworld --fast, rpstat --fast, and
/// RP_BENCH_FAST=1: caps membership_scale at 0.10 and shrinks the topology
/// class counts ~10x, keeping every study shape intact at smoke runtime.
void apply_fast_mode(ScenarioConfig& config);

}  // namespace rp::core

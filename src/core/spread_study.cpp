#include "core/spread_study.hpp"

namespace rp::core {

SpreadStudy SpreadStudy::run(const Scenario& scenario,
                             const SpreadStudyConfig& config) {
  SpreadStudy study;
  study.config_ = config;
  for (ixp::IxpId id : scenario.measured_ixps()) {
    const ixp::Ixp& ixp = scenario.ecosystem().ixp(id);
    util::Rng campaign_rng = scenario.fork_rng(0x100 + id);
    study.raw_.push_back(
        measure::run_ixp_campaign(ixp, config.campaign, campaign_rng));
  }
  for (const auto& measurement : study.raw_)
    study.analyses_.push_back(
        measure::apply_filters(measurement, config.filters));
  study.report_ =
      measure::SpreadReport::build(study.analyses_, config.classifier);
  return study;
}

SpreadStudy SpreadStudy::reanalyze(
    const std::vector<measure::IxpMeasurement>& raw,
    const SpreadStudyConfig& config) {
  SpreadStudy study;
  study.config_ = config;
  study.raw_ = raw;
  for (const auto& measurement : study.raw_)
    study.analyses_.push_back(
        measure::apply_filters(measurement, config.filters));
  study.report_ =
      measure::SpreadReport::build(study.analyses_, config.classifier);
  return study;
}

}  // namespace rp::core

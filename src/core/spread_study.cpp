#include "core/spread_study.hpp"

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::core {

SpreadStudy SpreadStudy::run(const WorldView& world,
                             const SpreadStudyConfig& config) {
  obs::Span span("core.spread_study.run");
  SpreadStudy study;
  study.config_ = config;
  // Each per-IXP campaign owns its own simulator and a deterministically
  // forked RNG (keyed on the IXP id alone), so the fan-out is pure per
  // index: the report is byte-identical at any RP_THREADS / RP_SIM_SHARDS.
  std::vector<const ixp::Ixp*> ixps;
  ixps.reserve(world.measured_ixps.size());
  for (const ixp::IxpId id : world.measured_ixps)
    ixps.push_back(&world.ecosystem->ixp(id));
  study.raw_ = measure::CampaignRunner::run(
      ixps, config.campaign, [&world](const ixp::Ixp& ixp) {
        return world.fork_rng(0x100 + ixp.id());
      });
  util::ThreadPool& pool = util::ThreadPool::global();
  {
    obs::Span filter_span("measure.apply_filters");
    study.analyses_ = pool.parallel_transform(
        study.raw_.size(), [&study, &config](std::size_t k) {
          return measure::apply_filters(study.raw_[k], config.filters);
        });
  }
  obs::Span report_span("measure.spread_report.build");
  study.report_ =
      measure::SpreadReport::build(study.analyses_, config.classifier);
  return study;
}

SpreadStudy SpreadStudy::reanalyze(
    const std::vector<measure::IxpMeasurement>& raw,
    const SpreadStudyConfig& config) {
  SpreadStudy study;
  study.config_ = config;
  study.raw_ = raw;
  study.analyses_ = util::ThreadPool::global().parallel_transform(
      study.raw_.size(), [&study, &config](std::size_t k) {
        return measure::apply_filters(study.raw_[k], config.filters);
      });
  study.report_ =
      measure::SpreadReport::build(study.analyses_, config.classifier);
  return study;
}

}  // namespace rp::core

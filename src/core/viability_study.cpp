#include "core/viability_study.hpp"

#include <stdexcept>

namespace rp::core {

ViabilityStudy ViabilityStudy::from_greedy_curve(
    const std::vector<offload::GreedyStep>& steps, double initial_weight,
    econ::CostParameters prices) {
  if (initial_weight <= 0.0)
    throw std::invalid_argument("ViabilityStudy: initial weight must be > 0");
  // Eq. 3 models the *offloadable* traffic decaying with each reached IXP.
  // A single vantage cannot offload everything (Fig. 9 flattens out at its
  // achievable floor), so the curve is normalized by that floor before
  // fitting: t_k = floor + (1 - floor) exp(-b k). Fitting the raw curve
  // instead would dilute b toward 0 and make the cost analysis vacuous.
  double floor_weight = initial_weight;
  for (const auto& step : steps)
    floor_weight = std::min(floor_weight, step.remaining);
  const double floor_fraction = floor_weight / initial_weight;
  if (floor_fraction >= 1.0 - 1e-12)
    throw std::invalid_argument(
        "ViabilityStudy: the curve never offloads anything");
  std::vector<double> normalized{1.0};
  for (const auto& step : steps) {
    const double remaining = step.remaining / initial_weight;
    normalized.push_back((remaining - floor_fraction) /
                         (1.0 - floor_fraction));
  }
  const double decay = econ::fit_decay_parameter(normalized);
  prices.decay = decay;
  return ViabilityStudy(decay, econ::CostModel(prices));
}

ViabilityStudy ViabilityStudy::from_decay(double decay,
                                          econ::CostParameters prices) {
  prices.decay = decay;
  return ViabilityStudy(decay, econ::CostModel(prices));
}

std::vector<ViabilityStudy::SweepPoint> ViabilityStudy::sweep_decay(
    double lo, double hi, std::size_t points) const {
  // Degenerate ranges are meaningful: lo == hi evaluates a single decay
  // (any points >= 1), and points == 1 needs lo == hi to be well-defined.
  if (points == 0 || lo < 0.0 || lo > hi || (points < 2 && lo < hi))
    throw std::invalid_argument("ViabilityStudy::sweep_decay: bad range");
  std::vector<SweepPoint> out;
  out.reserve(points);
  const double denominator =
      points > 1 ? static_cast<double>(points - 1) : 1.0;
  for (std::size_t i = 0; i < points; ++i) {
    econ::CostParameters params = model_.params();
    params.decay = lo + (hi - lo) * static_cast<double>(i) / denominator;
    const econ::CostModel model(params);
    SweepPoint point;
    point.decay = params.decay;
    point.viable = model.remote_viable();
    point.optimal_n = model.optimal_direct_n();
    point.optimal_m = model.optimal_remote_m();
    point.cost_without_remote = model.cost_without_remote(point.optimal_n);
    point.cost_with_remote =
        model.total_cost(point.optimal_n, point.optimal_m);
    out.push_back(point);
  }
  return out;
}

}  // namespace rp::core

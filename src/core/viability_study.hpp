// ViabilityStudy: the §5 economic analysis, parameterized by §4 results.
//
// Fits the decay parameter b (eq. 3) from an empirical remaining-transit
// curve, instantiates the cost model, and exposes the closed-form optima
// (eqs. 11 and 13), the viability condition (eq. 14), and parameter sweeps
// for the viability-region bench.
#pragma once

#include <vector>

#include "econ/cost_model.hpp"
#include "offload/analyzer.hpp"

namespace rp::core {

class ViabilityStudy {
 public:
  /// Builds the study from a greedy offload curve (Fig. 9 output): the
  /// remaining-transit weights become the empirical decay curve.
  static ViabilityStudy from_greedy_curve(
      const std::vector<offload::GreedyStep>& steps, double initial_weight,
      econ::CostParameters prices);

  /// Builds from an explicit decay parameter.
  static ViabilityStudy from_decay(double decay, econ::CostParameters prices);

  double fitted_decay() const { return decay_; }
  const econ::CostModel& model() const { return model_; }

  /// Eq. 11: optimal directly reached IXPs and offloaded fraction.
  double optimal_direct_n() const { return model_.optimal_direct_n(); }
  double optimal_direct_fraction() const {
    return model_.optimal_direct_fraction();
  }
  /// Eq. 13: optimal additional remotely reached IXPs.
  double optimal_remote_m() const { return model_.optimal_remote_m(); }
  /// Eq. 14.
  bool remote_viable() const { return model_.remote_viable(); }

  /// Sweeps decay b and reports, per value, whether remote peering is viable
  /// and the optimal (ñ, m̃) — the viability-region series. Degenerate
  /// ranges are allowed: lo == hi repeats the single decay `points` times,
  /// and points == 1 (with lo == hi) evaluates exactly one point. Throws
  /// std::invalid_argument when points == 0, lo > hi, lo < 0, or a single
  /// point spans a non-empty range.
  struct SweepPoint {
    double decay = 0.0;
    bool viable = false;
    double optimal_n = 0.0;
    double optimal_m = 0.0;
    double cost_without_remote = 0.0;
    double cost_with_remote = 0.0;
  };
  std::vector<SweepPoint> sweep_decay(double lo, double hi,
                                      std::size_t points) const;

 private:
  ViabilityStudy(double decay, econ::CostModel model)
      : decay_(decay), model_(std::move(model)) {}

  double decay_;
  econ::CostModel model_;
};

}  // namespace rp::core

// Seed data for the IXP ecosystem.
//
// Table 1 of the paper lists the 22 IXPs of the §3 measurement study with
// location, peak traffic, member count, and the number of interfaces that
// survived the filters. The §4 offload study widens the set to the 65 IXPs of
// the February-2013 Euro-IX data (dropping the looking-glass constraint) and
// names a few more exchanges among the top-10 offload sites (Terremark,
// SFINX, CoreSite, NL-ix, plus the vantage's own CATNIX and ESpanix). These
// seeds reproduce that inventory; member rosters are synthesized on top by
// the scenario builder.
#pragma once

#include <string>
#include <vector>

#include "geo/cities.hpp"

namespace rp::ixp {

/// Static description of one IXP used to instantiate a scenario.
struct IxpSeed {
  std::string acronym;
  std::string full_name;
  std::string city;  ///< Must resolve in the CityRegistry.
  /// Peak traffic in Tbps; negative when unpublished (N/A in Table 1).
  double peak_traffic_tbps = 0.0;
  /// Members as crawled from the IXP website (Table 1 column).
  int member_count = 0;
  /// Interfaces surviving all six filters (Table 1 column); used by the
  /// scenario builder to scale how many interfaces members bring.
  int analyzed_interfaces = 0;
  bool has_pch_lg = false;
  bool has_ripe_lg = false;
  /// Fraction of members attached remotely (provider pseudowire or partner
  /// IXP). Seeded from the paper's observations: about one fifth at AMS-IX,
  /// zero observed at DIX-IE and CABASE, elevated at TOP-IX (VSIX/LyonIX
  /// interconnects).
  double remote_member_fraction = 0.10;
  /// Whether this is one of the paper's 22 measured IXPs (has an LG).
  bool in_measurement_study = false;
  /// Number of interconnected switch sites in the metro area (§3.1 "IXPs
  /// with multiple locations"): probes from an LG at one site to a member
  /// at another cross inter-site trunks, which must not push a direct
  /// member past the remoteness threshold.
  int site_count = 1;
};

/// The 22 IXPs of Table 1, in the table's row order.
const std::vector<IxpSeed>& table1_seeds();

/// The full 65-IXP set of the §4 offload study: the 22 above plus the
/// additional Euro-IX members and named offload sites.
const std::vector<IxpSeed>& euroix_seeds();

/// Remote-peering provider seeds patterned after IX Reach and Atrato IP
/// Networks, plus a transit provider acting in the remote-peering niche.
struct ProviderSeed {
  std::string name;
  std::vector<std::string> pop_cities;
  double path_stretch = 1.5;
};

const std::vector<ProviderSeed>& provider_seeds();

}  // namespace rp::ixp

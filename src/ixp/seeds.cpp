#include "ixp/seeds.hpp"

namespace rp::ixp {
namespace {

std::vector<IxpSeed> build_table1() {
  // Columns mirror Table 1: acronym, name, city, peak traffic (Tbps),
  // members, analyzed interfaces. LG assignment: the three big European
  // exchanges plus a few others host both PCH and RIPE NCC servers (the
  // LG-consistent filter needs at least one IXP with both); the rest have a
  // single PCH server, matching the paper's reliance on PCH coverage.
  std::vector<IxpSeed> seeds = {
      {"AMS-IX", "Amsterdam Internet Exchange", "Amsterdam", 5.48, 638, 665,
       true, true, 0.20, true},
      {"DE-CIX", "German Commercial Internet Exchange", "Frankfurt", 3.21, 463,
       535, true, true, 0.17, true},
      {"LINX", "London Internet Exchange", "London", 2.60, 497, 521, true,
       true, 0.15, true},
      {"HKIX", "Hong Kong Internet Exchange", "Hong Kong", 0.48, 213, 278,
       true, false, 0.12, true},
      {"NYIIX", "New York International Internet Exchange", "New York", 0.46,
       132, 239, true, false, 0.12, true},
      {"MSK-IX", "Moscow Internet eXchange", "Moscow", 1.32, 367, 218, true,
       true, 0.08, true},
      {"PLIX", "Polish Internet Exchange", "Warsaw", 0.63, 235, 207, true,
       false, 0.08, true},
      {"France-IX", "France-IX", "Paris", 0.23, 230, 201, true, true, 0.16,
       true},
      {"PTT", "PTTMetro Sao Paolo", "Sao Paulo", 0.30, 482, 180, true, false,
       0.15, true},
      {"SIX", "Seattle Internet Exchange", "Seattle", 0.53, 177, 175, true,
       false, 0.09, true},
      {"LoNAP", "London Network Access Point", "London", 0.10, 142, 166, true,
       false, 0.13, true},
      {"JPIX", "Japan Internet Exchange", "Tokyo", 0.43, 131, 163, true, false,
       0.11, true},
      {"TorIX", "Toronto Internet Exchange", "Toronto", 0.28, 177, 161, true,
       false, 0.10, true},
      {"VIX", "Vienna Internet Exchange", "Vienna", 0.19, 121, 134, true, true,
       0.09, true},
      {"MIX", "Milan Internet Exchange", "Milan", 0.16, 133, 131, true, false,
       0.10, true},
      {"TOP-IX", "Torino Piemonte Internet Exchange", "Turin", 0.05, 80, 91,
       true, false, 0.22, true},
      {"Netnod", "Netnod Internet Exchange", "Stockholm", 1.34, 89, 71, true,
       true, 0.08, true},
      {"KINX", "Korea Internet Neutral Exchange", "Seoul", 0.15, 46, 71, true,
       false, 0.07, true},
      {"CABASE", "Argentine Chamber of Internet", "Buenos Aires", 0.02, 101,
       68, true, false, 0.0, true},
      {"INEX", "Internet Neutral Exchange", "Dublin", 0.13, 63, 66, true,
       false, 0.09, true},
      {"DIX-IE", "Distributed Internet Exchange in Edo", "Tokyo", -1.0, 36, 56,
       true, false, 0.0, true},
      {"TIE", "Telx Internet Exchange", "New York", 0.02, 149, 54, true, false,
       0.12, true},
  };
  // Multi-site metro fabrics (the §3.1 "IXPs with multiple locations"
  // discussion): the big European exchanges, the explicitly distributed
  // DIX-IE, Moscow's multi-PoP MSK-IX, and Sao Paulo's PTT.
  for (auto& seed : seeds) {
    if (seed.acronym == "AMS-IX" || seed.acronym == "LINX") seed.site_count = 3;
    if (seed.acronym == "DE-CIX" || seed.acronym == "MSK-IX" ||
        seed.acronym == "PTT" || seed.acronym == "DIX-IE")
      seed.site_count = 2;
  }
  return seeds;
}

std::vector<IxpSeed> build_euroix() {
  std::vector<IxpSeed> seeds = build_table1();
  // Named exchanges from the §4 analysis (Fig. 7's top-10 includes Terremark,
  // SFINX, CoreSite, NL-ix) and the vantage network's own memberships
  // (CATNIX Barcelona, ESpanix Madrid). No LG constraint here.
  auto add = [&seeds](std::string acronym, std::string name, std::string city,
                      double tbps, int members, double remote_fraction) {
    IxpSeed s;
    s.acronym = std::move(acronym);
    s.full_name = std::move(name);
    s.city = std::move(city);
    s.peak_traffic_tbps = tbps;
    s.member_count = members;
    s.analyzed_interfaces = 0;  // Not in the measurement study.
    s.remote_member_fraction = remote_fraction;
    seeds.push_back(std::move(s));
  };
  add("Terremark", "Terremark NAP of the Americas", "Miami", 0.40, 267, 0.12);
  add("SFINX", "Service for French Internet Exchange", "Paris", 0.05, 90,
      0.08);
  add("CoreSite", "CoreSite Any2 Exchange", "Los Angeles", 0.30, 180, 0.10);
  add("NL-ix", "Netherlands Internet Exchange", "Amsterdam", 0.35, 220, 0.14);
  add("ESpanix", "Espana Internet Exchange", "Madrid", 0.20, 60, 0.05);
  add("CATNIX", "Catalunya Neutral Internet Exchange", "Barcelona", 0.02, 30,
      0.05);
  add("VSIX", "Veneto South Internet Exchange", "Padua", 0.02, 40, 0.10);
  add("LyonIX", "Lyon Internet Exchange", "Lyon", 0.03, 50, 0.10);
  add("ECIX", "European Commercial Internet Exchange", "Berlin", 0.15, 110,
      0.10);
  add("BIX", "Budapest Internet Exchange", "Budapest", 0.20, 60, 0.06);
  add("NIX-CZ", "Neutral Internet Exchange Czech", "Prague", 0.25, 100, 0.06);
  add("SIX-SK", "Slovak Internet Exchange", "Bratislava", 0.08, 50, 0.05);
  add("InterLAN", "InterLAN Internet Exchange", "Bucharest", 0.10, 60, 0.05);
  add("BG-IX", "Bulgarian Internet Exchange", "Sofia", 0.06, 40, 0.05);
  add("GR-IX", "Greek Internet Exchange", "Athens", 0.05, 30, 0.06);
  add("NaMeX", "Nautilus Mediterranean Exchange", "Rome", 0.05, 50, 0.08);
  add("GigaPIX", "Gigabit Portuguese Internet Exchange", "Lisbon", 0.03, 30,
      0.06);
  add("UA-IX", "Ukrainian Internet Exchange", "Kyiv", 0.30, 90, 0.04);
  add("SMILE", "Latvian Internet Exchange", "Riga", 0.04, 30, 0.04);
  add("IXManchester", "Internet Exchange Manchester", "Manchester", 0.04, 50,
      0.10);
  add("IXScotland", "Internet Exchange Scotland", "Edinburgh", 0.01, 20, 0.10);
  add("DE-CIX-MUC", "DE-CIX Munich", "Munich", 0.10, 60, 0.12);
  add("SwissIX", "Swiss Internet Exchange", "Zurich", 0.25, 120, 0.08);
  add("CIXP", "CERN Internet Exchange Point", "Geneva", 0.03, 30, 0.05);
  add("BNIX", "Belgian National Internet Exchange", "Brussels", 0.12, 50,
      0.06);
  add("DIX", "Danish Internet Exchange", "Copenhagen", 0.08, 50, 0.05);
  add("NIX-NO", "Norwegian Internet Exchange", "Oslo", 0.07, 40, 0.05);
  add("FICIX", "Finnish Communication Internet Exchange", "Helsinki", 0.09, 30,
      0.04);
  add("LU-CIX", "Luxembourg Commercial Internet Exchange", "Luxembourg", 0.04,
      40, 0.08);
  add("France-IX-MRS", "France-IX Marseille", "Marseille", 0.02, 30, 0.12);
  add("Equinix-ASH", "Equinix Internet Exchange Ashburn", "Ashburn", 0.50, 200,
      0.10);
  add("Equinix-CHI", "Equinix Internet Exchange Chicago", "Chicago", 0.30, 150,
      0.09);
  add("Equinix-DAL", "Equinix Internet Exchange Dallas", "Dallas", 0.20, 120,
      0.09);
  add("Any2-SJC", "Any2 San Jose", "San Jose", 0.15, 100, 0.10);
  add("TELXATL", "Telx Atlanta Internet Exchange", "Atlanta", 0.05, 60, 0.08);
  add("QIX", "Quebec Internet Exchange", "Montreal", 0.03, 40, 0.06);
  add("VANIX", "Vancouver Internet Exchange", "Vancouver", 0.02, 30, 0.06);
  add("MEX-IX", "Mexico Internet Exchange", "Mexico City", 0.01, 20, 0.08);
  add("PTT-RJ", "PTTMetro Rio de Janeiro", "Rio de Janeiro", 0.10, 150, 0.12);
  add("PTT-RS", "PTTMetro Porto Alegre", "Porto Alegre", 0.04, 80, 0.12);
  add("NAP-CL", "NAP Chile", "Santiago", 0.05, 40, 0.06);
  add("NAP-CO", "NAP Colombia", "Bogota", 0.03, 30, 0.06);
  add("Equinix-SG", "Equinix Internet Exchange Singapore", "Singapore", 0.25,
      150, 0.12);
  // 65 total = 22 (Table 1) + 43 additional sites.
  return seeds;
}

std::vector<ProviderSeed> build_providers() {
  return {
      // Patterned after IX Reach: dense European footprint reaching into
      // North America and Asia.
      {"IXCarrier",
       {"London", "Amsterdam", "Frankfurt", "Paris", "Madrid", "Milan",
        "Stockholm", "Vienna", "Warsaw", "New York", "Miami", "Seattle",
        "Hong Kong", "Tokyo"},
       1.5},
      // Patterned after Atrato IP Networks (the provider Invitel used to
      // reach AMS-IX and DE-CIX in the paper's validation).
      {"AtratoNet",
       {"Amsterdam", "Frankfurt", "Budapest", "Zurich", "London", "New York"},
       1.45},
      // A traditional transit provider leveraging its backbone for
      // remote-peering services (§2.3 notes incumbents entering the niche).
      {"GlobalTransitRP",
       {"London", "Frankfurt", "Singapore", "Sao Paulo", "Buenos Aires",
        "Johannesburg", "Dubai", "Sydney", "Los Angeles", "Toronto",
        "Moscow", "Seoul"},
       1.6},
  };
}

}  // namespace

const std::vector<IxpSeed>& table1_seeds() {
  static const std::vector<IxpSeed> seeds = build_table1();
  return seeds;
}

const std::vector<IxpSeed>& euroix_seeds() {
  static const std::vector<IxpSeed> seeds = build_euroix();
  return seeds;
}

const std::vector<ProviderSeed>& provider_seeds() {
  static const std::vector<ProviderSeed> seeds = build_providers();
  return seeds;
}

}  // namespace rp::ixp

#include "ixp/ixp.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace rp::ixp {

std::string to_string(LgOperator op) {
  switch (op) {
    case LgOperator::kPch: return "PCH";
    case LgOperator::kRipeNcc: return "RIPE NCC";
  }
  return "unknown";
}

std::string to_string(AttachmentKind k) {
  switch (k) {
    case AttachmentKind::kDirectColo: return "direct-colo";
    case AttachmentKind::kIpTransport: return "ip-transport";
    case AttachmentKind::kRemoteViaProvider: return "remote-via-provider";
    case AttachmentKind::kPartnerIxp: return "partner-ixp";
  }
  return "unknown";
}

const geo::City& RemotePeeringProvider::nearest_pop(
    const geo::City& from) const {
  if (pops.empty())
    throw std::logic_error("RemotePeeringProvider " + name + " has no PoPs");
  const geo::City* best = &pops.front();
  double best_distance =
      geo::great_circle_distance_m(from.position, best->position);
  for (const auto& pop : pops) {
    const double d = geo::great_circle_distance_m(from.position, pop.position);
    if (d < best_distance) {
      best_distance = d;
      best = &pop;
    }
  }
  return *best;
}

util::SimDuration RemotePeeringProvider::circuit_delay(
    const geo::City& customer_city, const geo::City& ixp_city) const {
  const geo::City& pop = nearest_pop(customer_city);
  // Local tail from the customer PoP to the provider PoP, then the provider's
  // long-haul circuit to the IXP, both with the provider's path stretch.
  const double tail_m = geo::great_circle_distance_m(customer_city.position,
                                                     pop.position);
  const double haul_m =
      geo::great_circle_distance_m(pop.position, ixp_city.position);
  return geo::propagation_delay_for_distance((tail_m + haul_m) * path_stretch);
}

Ixp::Ixp(IxpId id, std::string acronym, std::string full_name, geo::City city,
         double peak_traffic_tbps, net::Ipv4Prefix peering_lan)
    : id_(id),
      acronym_(std::move(acronym)),
      full_name_(std::move(full_name)),
      city_(std::move(city)),
      peak_traffic_tbps_(peak_traffic_tbps),
      peering_lan_(peering_lan) {}

void Ixp::set_site_count(int sites) {
  if (sites < 1) throw std::invalid_argument("Ixp::set_site_count: sites < 1");
  site_count_ = sites;
}

void Ixp::add_interface(MemberInterface iface) {
  if (!peering_lan_.contains(iface.addr))
    throw std::invalid_argument("Ixp::add_interface: " +
                                iface.addr.to_string() + " outside LAN " +
                                peering_lan_.to_string());
  if (interface_at(iface.addr) != nullptr)
    throw std::invalid_argument("Ixp::add_interface: duplicate address " +
                                iface.addr.to_string());
  interfaces_.push_back(std::move(iface));
}

void Ixp::add_looking_glass(LookingGlass lg) {
  looking_glasses_.push_back(lg);
}

std::vector<const MemberInterface*> Ixp::interfaces_of(net::Asn asn) const {
  std::vector<const MemberInterface*> out;
  for (const auto& iface : interfaces_)
    if (iface.asn == asn) out.push_back(&iface);
  return out;
}

const MemberInterface* Ixp::interface_at(net::Ipv4Addr addr) const {
  for (const auto& iface : interfaces_)
    if (iface.addr == addr) return &iface;
  return nullptr;
}

std::vector<net::Asn> Ixp::member_asns() const {
  std::vector<net::Asn> out;
  std::unordered_set<net::Asn> seen;
  for (const auto& iface : interfaces_)
    if (seen.insert(iface.asn).second) out.push_back(iface.asn);
  return out;
}

std::size_t Ixp::member_count() const { return member_asns().size(); }

bool Ixp::has_member(net::Asn asn) const {
  return std::any_of(interfaces_.begin(), interfaces_.end(),
                     [asn](const MemberInterface& i) { return i.asn == asn; });
}

IxpId IxpEcosystem::add_ixp(std::string acronym, std::string full_name,
                            geo::City city, double peak_traffic_tbps,
                            net::Ipv4Prefix peering_lan) {
  if (find(acronym) != nullptr)
    throw std::invalid_argument("IxpEcosystem: duplicate acronym " + acronym);
  const auto id = static_cast<IxpId>(ixps_.size());
  ixps_.emplace_back(id, std::move(acronym), std::move(full_name),
                     std::move(city), peak_traffic_tbps, peering_lan);
  return id;
}

std::size_t IxpEcosystem::add_provider(RemotePeeringProvider provider) {
  providers_.push_back(std::move(provider));
  return providers_.size() - 1;
}

const Ixp* IxpEcosystem::find(const std::string& acronym) const {
  for (const auto& ixp : ixps_)
    if (ixp.acronym() == acronym) return &ixp;
  return nullptr;
}

Ixp* IxpEcosystem::find(const std::string& acronym) {
  return const_cast<Ixp*>(std::as_const(*this).find(acronym));
}

std::vector<IxpId> IxpEcosystem::ixps_of(net::Asn asn) const {
  std::vector<IxpId> out;
  for (const auto& ixp : ixps_)
    if (ixp.has_member(asn)) out.push_back(ixp.id());
  return out;
}

}  // namespace rp::ixp

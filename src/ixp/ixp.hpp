// Internet eXchange Points, their members, looking glasses, and the layer-2
// remote-peering providers that connect distant networks to them (§2.3).
//
// An IXP is a layer-2 switching fabric with a shared peering LAN. A member
// either has IP presence at the IXP location (direct peering — own
// infrastructure or a contracted IP transport into the facility) or peers
// remotely through a remote-peering provider's pseudowire. On layer 3 the two
// are indistinguishable: both put an interface of the member into the IXP
// subnet. The RTT from inside the facility to that interface is what tells
// them apart — the basis of the paper's detection method.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geo/geo.hpp"
#include "net/ip.hpp"
#include "net/mac.hpp"
#include "util/sim_time.hpp"

namespace rp::ixp {

/// Identifier of an IXP within an IxpEcosystem (index into its vector).
using IxpId = std::uint32_t;

/// Who operates a looking-glass server at the IXP. The paper uses both PCH
/// and RIPE NCC servers; they differ in how many echo requests one HTML query
/// triggers (5 vs 3) — which feeds the sample-size filter arithmetic.
enum class LgOperator { kPch, kRipeNcc };

std::string to_string(LgOperator op);

/// A looking-glass server co-located with the IXP fabric.
struct LookingGlass {
  LgOperator op = LgOperator::kPch;
  /// Echo requests issued per query: PCH sends 5, RIPE NCC sends 3.
  int pings_per_query = 5;
  net::Ipv4Addr addr;

  static LookingGlass pch(net::Ipv4Addr addr) {
    return {LgOperator::kPch, 5, addr};
  }
  static LookingGlass ripe(net::Ipv4Addr addr) {
    return {LgOperator::kRipeNcc, 3, addr};
  }
};

/// How a member's interface reaches the IXP fabric.
enum class AttachmentKind {
  /// Router co-located with the IXP (direct peering).
  kDirectColo,
  /// Member contracted an IP transport into the IXP location: still direct
  /// peering under the paper's definition (§2.2) — it has IP presence there.
  kIpTransport,
  /// Remote peering: reached over a remote-peering provider's layer-2
  /// circuit from a distant PoP (§2.3).
  kRemoteViaProvider,
  /// Reached over a partner-IXP interconnect (e.g. AMS-IX Hong Kong members
  /// on AMS-IX). The paper's method deliberately classifies these as remote.
  kPartnerIxp,
};

std::string to_string(AttachmentKind k);

/// A remote-peering provider: a layer-2 intermediary (IX Reach, Atrato, or a
/// transit provider in this business niche) with PoPs where customers hand
/// off traffic, and pseudowires into the IXPs it serves.
struct RemotePeeringProvider {
  std::string name;
  std::vector<geo::City> pops;
  /// Circuit path stretch over great-circle distance (provider backbones are
  /// usually less direct than point-to-point fiber).
  double path_stretch = 1.5;

  /// Provider PoP nearest to `from` (by great-circle distance).
  const geo::City& nearest_pop(const geo::City& from) const;
  /// One-way latency of a pseudowire from `customer_city` through the
  /// nearest PoP to the IXP at `ixp_city`.
  util::SimDuration circuit_delay(const geo::City& customer_city,
                                  const geo::City& ixp_city) const;
};

/// One member interface in the IXP peering LAN. A member network (ASN) may
/// have several interfaces at the same IXP — Table 1 counts interfaces, not
/// members, which is why its interface column can exceed the member column.
struct MemberInterface {
  net::Asn asn;
  net::Ipv4Addr addr;
  net::MacAddr mac;
  AttachmentKind kind = AttachmentKind::kDirectColo;
  /// Where the member's router actually sits: the IXP city for direct
  /// attachments, the member's PoP city for remote ones.
  geo::City equipment_city;
  /// Index of the remote-peering provider used (kRemoteViaProvider only).
  std::optional<std::size_t> provider_index;
  /// One-way latency from the member router to the IXP fabric.
  util::SimDuration circuit_one_way;
  /// Whether this member announces routes through the IXP route server
  /// (typical for open-policy networks — multilateral peering, §4.2).
  bool uses_route_server = false;
  /// Whether the interface address is discoverable from PeeringDB/PCH/IXP
  /// websites (§3.1 targets only discoverable addresses; members without a
  /// published address exist for the offload study but are never probed).
  bool discoverable = true;

  /// Ground truth for validation: remote peering in the paper's sense means
  /// reaching the fabric through a layer-2 intermediary from a distant PoP.
  bool is_remote_ground_truth() const {
    return kind == AttachmentKind::kRemoteViaProvider ||
           kind == AttachmentKind::kPartnerIxp;
  }
};

/// An Internet eXchange Point.
class Ixp {
 public:
  Ixp(IxpId id, std::string acronym, std::string full_name, geo::City city,
      double peak_traffic_tbps, net::Ipv4Prefix peering_lan);

  IxpId id() const { return id_; }
  const std::string& acronym() const { return acronym_; }
  const std::string& full_name() const { return full_name_; }
  const geo::City& city() const { return city_; }
  /// Interconnected switch sites in the metro area (>= 1). Probes between
  /// sites cross inter-site trunks; the 10 ms threshold is chosen so that
  /// metro-scale trunks never make a direct member look remote (§3.1).
  int site_count() const { return site_count_; }
  void set_site_count(int sites);
  /// Peak traffic in Tbps as advertised by the IXP; negative when unknown
  /// (Table 1 lists N/A for DIX-IE).
  double peak_traffic_tbps() const { return peak_traffic_tbps_; }
  /// Port-capacity upgrades (epoch events) move the advertised peak.
  void set_peak_traffic_tbps(double tbps) { peak_traffic_tbps_ = tbps; }
  const net::Ipv4Prefix& peering_lan() const { return peering_lan_; }

  void add_interface(MemberInterface iface);
  void add_looking_glass(LookingGlass lg);

  /// Removes every interface matching `pred` (member leave / outage epoch
  /// events) and returns them in their original relative order; the
  /// remaining interfaces keep their order too, so removal is deterministic.
  template <typename Pred>
  std::vector<MemberInterface> extract_interfaces(Pred pred) {
    std::vector<MemberInterface> removed;
    std::vector<MemberInterface> kept;
    kept.reserve(interfaces_.size());
    for (MemberInterface& iface : interfaces_) {
      if (pred(static_cast<const MemberInterface&>(iface)))
        removed.push_back(std::move(iface));
      else
        kept.push_back(std::move(iface));
    }
    interfaces_ = std::move(kept);
    return removed;
  }

  std::span<const MemberInterface> interfaces() const { return interfaces_; }
  std::span<const LookingGlass> looking_glasses() const {
    return looking_glasses_;
  }

  /// All interfaces belonging to one member ASN.
  std::vector<const MemberInterface*> interfaces_of(net::Asn asn) const;
  /// Interface bound to an address in the peering LAN; nullptr if none.
  const MemberInterface* interface_at(net::Ipv4Addr addr) const;
  /// Distinct member ASNs.
  std::vector<net::Asn> member_asns() const;
  std::size_t member_count() const;
  bool has_member(net::Asn asn) const;

 private:
  IxpId id_;
  std::string acronym_;
  std::string full_name_;
  geo::City city_;
  double peak_traffic_tbps_;
  net::Ipv4Prefix peering_lan_;
  int site_count_ = 1;
  std::vector<MemberInterface> interfaces_;
  std::vector<LookingGlass> looking_glasses_;
};

/// All IXPs of a scenario plus the remote-peering providers serving them.
class IxpEcosystem {
 public:
  /// Adds an IXP and returns its id. Acronyms must be unique.
  IxpId add_ixp(std::string acronym, std::string full_name, geo::City city,
                double peak_traffic_tbps, net::Ipv4Prefix peering_lan);
  std::size_t add_provider(RemotePeeringProvider provider);

  Ixp& ixp(IxpId id) { return ixps_.at(id); }
  const Ixp& ixp(IxpId id) const { return ixps_.at(id); }
  const Ixp* find(const std::string& acronym) const;
  Ixp* find(const std::string& acronym);

  std::span<const Ixp> ixps() const { return ixps_; }
  std::span<Ixp> ixps() { return ixps_; }
  std::span<const RemotePeeringProvider> providers() const {
    return providers_;
  }

  /// Every IXP id where `asn` has at least one interface — the network's
  /// "IXP count" of Fig. 4a.
  std::vector<IxpId> ixps_of(net::Asn asn) const;

 private:
  std::vector<Ixp> ixps_;
  std::vector<RemotePeeringProvider> providers_;
};

}  // namespace rp::ixp

// rp::fault — deterministic fault injection for the hot layers.
//
// Named injection sites are compiled into the code paths that must degrade
// gracefully under failure: snapshot read/write and checksum verification
// (src/io), the scenario cache (src/core/scenario_cache.cpp), thread-pool
// task execution (src/util/thread_pool), dataset parsing and campaign probe
// execution (src/measure), event scheduling in the discrete-event
// engine (src/sim/simulator), and bin delivery in the streaming ingest
// (src/stream). A site costs one predictable branch when the
// framework is disarmed — the same discipline as rp::obs — so the sites can
// stay in release builds and the greedy benchmark does not move.
//
// Sites are armed from the environment,
//
//   RP_FAULT=<site>:<spec>[,<site>:<spec>...]
//
// or programmatically with arm() (tests). The spec grammar:
//
//   spec    := trigger [action]
//   trigger := "nth=" N          fire on the Nth call to the site (1-based,
//                                exactly once)
//            | "every=" K        fire on every Kth call (K, 2K, 3K, ...)
//            | "p=" P "@seed=" S fire each call with probability P, decided
//                                by a hash of (S, call-index) — the seed is
//                                mandatory so a run replays byte-identically
//   action  := "+throw"          throw InjectedFault (the default)
//            | "+flip"           flip one deterministic payload bit
//            | "+truncate"       drop the payload's tail
//
// e.g. RP_FAULT=io.read:nth=1  RP_FAULT=io.write:every=3+truncate
//      RP_FAULT=pool.task:p=0.25@seed=42
//
// The corruption actions only make sense at sites that own a byte payload
// (io.read / io.write, via Site::maybe_corrupt); everywhere else an armed
// corruption action degenerates to a throw.
//
// Determinism: every decision is a pure function of (spec, per-site call
// index). Arming a site resets its call counter, so a test that re-arms the
// same spec replays the identical failure sequence. Call indices are claimed
// with an atomic counter, so under concurrency the *pattern* of firing calls
// is fixed even when the mapping of calls to work items depends on the
// schedule (document RP_THREADS alongside RP_FAULT to reproduce a run
// exactly).
//
// Observability: every fire increments rp.fault.fires plus a per-site
// rp.fault.fires.<site> counter (when metrics are enabled), so an injected
// failure is visible in the same exports as the degradation counters of the
// layer that absorbed it (rp.io.fallbacks, rp.measure.probes.dropped, ...).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rp::fault {

/// Thrown by an armed site (and by payload sites whose action is a throw).
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(const std::string& site, std::uint64_t call);

  /// The site that fired, e.g. "io.read".
  const std::string& site() const { return site_; }
  /// The 1-based call index that fired.
  std::uint64_t call() const { return call_; }

 private:
  std::string site_;
  std::uint64_t call_;
};

/// When an armed site fires.
enum class Trigger : std::uint8_t { kNth, kEvery, kProbability };

/// What a firing site does.
enum class Action : std::uint8_t { kThrow, kBitFlip, kTruncate };

/// A parsed "<trigger>[+action]" spec.
struct Spec {
  Trigger trigger = Trigger::kNth;
  /// N for nth=, K for every= (always >= 1).
  std::uint64_t n = 1;
  /// Fire probability for p= (in [0, 1]).
  double probability = 0.0;
  /// Mandatory seed for p= specs.
  std::uint64_t seed = 0;
  Action action = Action::kThrow;
};

/// Parses a bare spec ("nth=3+flip"); throws std::invalid_argument with a
/// message quoting the offending token on any grammar violation.
Spec parse_spec(std::string_view text);

namespace detail {

extern std::atomic<bool> g_any_armed;

struct SiteState;

/// Registers (or looks up) a site by name and returns its state block.
/// The same name always maps to the same state, so one logical site may be
/// referenced from several code locations.
SiteState* register_site(const char* name);

/// Counts one call against `state`'s armed spec; returns the action when
/// this call fires. Only called while g_any_armed is true.
std::optional<Action> site_fire(SiteState* state);

[[noreturn]] void throw_injected(SiteState* state);

/// Applies `action` to `bytes` deterministically (keyed by the firing call
/// index): kBitFlip flips one bit, kTruncate drops the tail, kThrow throws.
void corrupt_payload(SiteState* state, Action action,
                     std::vector<std::uint8_t>& bytes);

}  // namespace detail

/// True when at least one site is armed — the hot-path gate.
inline bool injection_enabled() {
  return detail::g_any_armed.load(std::memory_order_relaxed);
}

/// A named injection site. Construct once (function-local static) per
/// location; construction registers the name in the global registry.
class Site {
 public:
  explicit Site(const char* name) : state_(detail::register_site(name)) {}

  /// Counts a call when anything is armed and returns the action to perform
  /// when this call fires. One branch when the framework is disarmed.
  std::optional<Action> fire() {
    if (!injection_enabled()) return std::nullopt;
    return detail::site_fire(state_);
  }

  /// fire(), throwing InjectedFault on any hit (sites without a payload
  /// treat every action as a throw).
  void maybe_throw() {
    if (!injection_enabled()) return;
    if (detail::site_fire(state_)) detail::throw_injected(state_);
  }

  /// fire(), applying the armed action to `bytes` on a hit: a throw action
  /// raises InjectedFault; flip/truncate mutate the payload in place (the
  /// caller then proceeds with the corrupt bytes, exercising its checksum
  /// and fallback paths).
  void maybe_corrupt(std::vector<std::uint8_t>& bytes) {
    if (!injection_enabled()) return;
    if (auto action = detail::site_fire(state_))
      detail::corrupt_payload(state_, *action, bytes);
  }

  /// Applies an action already returned by fire() to a payload. Lets a call
  /// site separate the decision from the effect (io.write decides first,
  /// then stages the corruption or simulates a mid-write crash).
  void apply(Action action, std::vector<std::uint8_t>& bytes) {
    detail::corrupt_payload(state_, action, bytes);
  }

  /// Throws this site's InjectedFault unconditionally (for call sites that
  /// deliver a previously fired throw action at a specific point).
  [[noreturn]] void raise() { detail::throw_injected(state_); }

 private:
  detail::SiteState* state_;
};

/// Arms sites from a comma-separated directive list "<site>:<spec>[,...]".
/// Arming a site replaces any previous spec and resets its call counter (so
/// re-arming replays the same failure sequence). Unknown site names are
/// accepted and latched — the spec attaches when the site registers.
/// Throws std::invalid_argument on malformed directives.
void arm(const std::string& directives);

/// Disarms every site and clears pending (not-yet-registered) specs. Call
/// counters are reset; already-thrown faults are unaffected.
void disarm_all();

/// Parses RP_FAULT once per process (idempotent; the first Site registration
/// triggers it too). A malformed RP_FAULT aborts with a message on stderr —
/// silently ignoring a typo'd directive would fake a green fault run.
void arm_from_env();

/// One site's registry entry, for tests and CLI dumps.
struct SiteStatus {
  std::string name;
  bool armed = false;
  std::uint64_t calls = 0;  ///< Calls counted since the site was last armed.
  std::uint64_t fires = 0;  ///< Faults delivered since the site was last armed.
};

/// Every registered site, sorted by name.
std::vector<SiteStatus> site_status();

/// The canonical site names compiled into the pipeline (for docs and the
/// tests that drive every site): io.read, io.write, io.verify, cache.load,
/// cache.store, pool.task, dataset.parse, campaign.probe, sweep.run,
/// sim.event, serve.accept, serve.parse, serve.respond, serve.stats,
/// stream.bin (fires as a streaming ingest pulls its next bin frame — CI
/// kills a replay mid-stream with it and proves checkpoint resume). Most
/// sites treat every action as a throw; sim.event instead drops the scheduled
/// event on a throw action and delays it by 250 ms on a flip/truncate action
/// (a simulator must degrade, not unwind, mid-run), and the serve.* sites
/// kill the one connection they fire on (the daemon itself never unwinds) —
/// serve.stats fires while a stats request is being answered inline on its
/// reader thread. evolve.apply fires once per epoch event as a timeline
/// replay applies it — CI kills a replay mid-timeline with it and proves
/// the per-epoch records resume byte-identically.
inline constexpr const char* kSiteIoRead = "io.read";
inline constexpr const char* kSiteIoWrite = "io.write";
inline constexpr const char* kSiteIoVerify = "io.verify";
inline constexpr const char* kSiteCacheLoad = "cache.load";
inline constexpr const char* kSiteCacheStore = "cache.store";
inline constexpr const char* kSitePoolTask = "pool.task";
inline constexpr const char* kSiteDatasetParse = "dataset.parse";
inline constexpr const char* kSiteCampaignProbe = "campaign.probe";
inline constexpr const char* kSiteSweepRun = "sweep.run";
inline constexpr const char* kSiteSimEvent = "sim.event";
inline constexpr const char* kSiteServeAccept = "serve.accept";
inline constexpr const char* kSiteServeParse = "serve.parse";
inline constexpr const char* kSiteServeRespond = "serve.respond";
inline constexpr const char* kSiteServeStats = "serve.stats";
inline constexpr const char* kSiteStreamBin = "stream.bin";
inline constexpr const char* kSiteEvolveApply = "evolve.apply";

}  // namespace rp::fault

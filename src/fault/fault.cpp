#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace rp::fault {

InjectedFault::InjectedFault(const std::string& site, std::uint64_t call)
    : std::runtime_error("injected fault at site '" + site + "' (call #" +
                         std::to_string(call) + ")"),
      site_(site),
      call_(call) {}

namespace detail {

std::atomic<bool> g_any_armed{false};

// One registered site. The spec is written only under the registry mutex
// while no calls are in flight (arming mid-run is unsupported, like flipping
// rp::obs mid-pipeline); the counters are touched from arbitrary threads.
struct SiteState {
  static constexpr std::size_t kNoMetric = ~std::size_t{0};

  std::string name;
  std::atomic<bool> armed{false};
  Spec spec;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> fires{0};
  /// rp.fault.fires.<name>, registered lazily on the first fire so sites
  /// never consume counter slots unless injection is actually used.
  std::atomic<std::size_t> metric_id{kNoMetric};
};

namespace {

struct Registry {
  std::mutex mutex;
  // Sites live forever (they are referenced from function-local statics);
  // node-stable map so SiteState* never moves.
  std::map<std::string, std::unique_ptr<SiteState>> sites;
  // Specs armed before their site registered, attached on registration.
  std::map<std::string, Spec> pending;

  static Registry& global() {
    static Registry* instance = new Registry();  // leaked, like obs
    return *instance;
  }
};

void refresh_any_armed_locked(Registry& reg) {
  bool any = !reg.pending.empty();
  for (const auto& [name, site] : reg.sites)
    any = any || site->armed.load(std::memory_order_relaxed);
  g_any_armed.store(any, std::memory_order_relaxed);
}

// splitmix64: the per-call hash behind p= specs and payload corruption.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void note_fire(SiteState* state) {
  state->fires.fetch_add(1, std::memory_order_relaxed);
  if (!obs::metrics_enabled()) return;
  static obs::Counter total("rp.fault.fires");
  total.add();
  std::size_t id = state->metric_id.load(std::memory_order_acquire);
  if (id == SiteState::kNoMetric) {
    id = obs::MetricsRegistry::global().register_metric(
        "rp.fault.fires." + state->name, obs::MetricKind::kCounter,
        obs::Stability::kDeterministic);
    state->metric_id.store(id, std::memory_order_release);
  }
  obs::MetricsRegistry::global().counter_add(id, 1);
}

void arm_one_locked(Registry& reg, const std::string& site_name,
                    const Spec& spec) {
  if (auto it = reg.sites.find(site_name); it != reg.sites.end()) {
    SiteState* state = it->second.get();
    state->spec = spec;
    state->calls.store(0, std::memory_order_relaxed);
    state->fires.store(0, std::memory_order_relaxed);
    state->armed.store(true, std::memory_order_release);
  } else {
    reg.pending[site_name] = spec;
  }
}

}  // namespace

SiteState* register_site(const char* name) {
  arm_from_env();
  Registry& reg = Registry::global();
  std::scoped_lock lock(reg.mutex);
  auto it = reg.sites.find(name);
  if (it == reg.sites.end()) {
    auto state = std::make_unique<SiteState>();
    state->name = name;
    it = reg.sites.emplace(name, std::move(state)).first;
  }
  if (auto pending = reg.pending.find(name); pending != reg.pending.end()) {
    it->second->spec = pending->second;
    it->second->calls.store(0, std::memory_order_relaxed);
    it->second->fires.store(0, std::memory_order_relaxed);
    it->second->armed.store(true, std::memory_order_release);
    reg.pending.erase(pending);
  }
  return it->second.get();
}

std::optional<Action> site_fire(SiteState* state) {
  if (!state->armed.load(std::memory_order_acquire)) return std::nullopt;
  const std::uint64_t call =
      state->calls.fetch_add(1, std::memory_order_relaxed) + 1;
  const Spec& spec = state->spec;
  bool hit = false;
  switch (spec.trigger) {
    case Trigger::kNth:
      hit = call == spec.n;
      break;
    case Trigger::kEvery:
      hit = call % spec.n == 0;
      break;
    case Trigger::kProbability:
      // Threshold compare in 64-bit hash space: a pure function of
      // (seed, call index), so the firing pattern replays exactly.
      hit = static_cast<double>(mix64(spec.seed ^ call)) <
            spec.probability * 18446744073709551616.0;  // 2^64
      break;
  }
  if (!hit) return std::nullopt;
  note_fire(state);
  return spec.action;
}

void throw_injected(SiteState* state) {
  throw InjectedFault(state->name,
                      state->calls.load(std::memory_order_relaxed));
}

void corrupt_payload(SiteState* state, Action action,
                     std::vector<std::uint8_t>& bytes) {
  if (action == Action::kThrow || bytes.empty()) throw_injected(state);
  const std::uint64_t call = state->calls.load(std::memory_order_relaxed);
  if (action == Action::kBitFlip) {
    const std::uint64_t bit = mix64(call) % (bytes.size() * 8);
    bytes[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    return;
  }
  // kTruncate: keep a deterministic proper prefix.
  if (bytes.size() == 1) {
    bytes.clear();
    return;
  }
  const std::size_t keep =
      1 + static_cast<std::size_t>(mix64(call ^ 0x7fULL) % (bytes.size() - 1));
  bytes.resize(keep);
}

}  // namespace detail

namespace {

using detail::Registry;

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  if (text.empty())
    throw std::invalid_argument("fault spec: empty " + std::string(what));
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("fault spec: bad " + std::string(what) +
                                  " '" + std::string(text) + "'");
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10)
      throw std::invalid_argument("fault spec: " + std::string(what) +
                                  " overflows: '" + std::string(text) + "'");
    value = value * 10 + digit;
  }
  return value;
}

double parse_probability(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("fault spec: empty p=");
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(std::string(text), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || !(p >= 0.0) || !(p <= 1.0))
    throw std::invalid_argument("fault spec: probability '" +
                                std::string(text) + "' not in [0, 1]");
  return p;
}

}  // namespace

Spec parse_spec(std::string_view text) {
  Spec spec;
  // Split off the "+action" suffix first.
  if (const std::size_t plus = text.rfind('+'); plus != std::string_view::npos) {
    const std::string_view action = text.substr(plus + 1);
    if (action == "throw") spec.action = Action::kThrow;
    else if (action == "flip") spec.action = Action::kBitFlip;
    else if (action == "truncate") spec.action = Action::kTruncate;
    else
      throw std::invalid_argument("fault spec: unknown action '" +
                                  std::string(action) +
                                  "' (throw|flip|truncate)");
    text = text.substr(0, plus);
  }
  if (text.rfind("nth=", 0) == 0) {
    spec.trigger = Trigger::kNth;
    spec.n = parse_u64(text.substr(4), "nth count");
    if (spec.n == 0)
      throw std::invalid_argument("fault spec: nth= must be >= 1");
  } else if (text.rfind("every=", 0) == 0) {
    spec.trigger = Trigger::kEvery;
    spec.n = parse_u64(text.substr(6), "every stride");
    if (spec.n == 0)
      throw std::invalid_argument("fault spec: every= must be >= 1");
  } else if (text.rfind("p=", 0) == 0) {
    spec.trigger = Trigger::kProbability;
    const std::string_view rest = text.substr(2);
    const std::size_t at = rest.find("@seed=");
    if (at == std::string_view::npos)
      throw std::invalid_argument(
          "fault spec: p= requires an explicit @seed= (deterministic replay)");
    spec.probability = parse_probability(rest.substr(0, at));
    spec.seed = parse_u64(rest.substr(at + 6), "seed");
  } else {
    throw std::invalid_argument("fault spec: unknown trigger '" +
                                std::string(text) + "' (nth=|every=|p=)");
  }
  return spec;
}

void arm(const std::string& directives) {
  Registry& reg = Registry::global();
  // Parse everything before arming anything: a bad directive arms nothing.
  std::vector<std::pair<std::string, Spec>> parsed;
  std::size_t start = 0;
  while (start <= directives.size()) {
    std::size_t end = directives.find(',', start);
    if (end == std::string::npos) end = directives.size();
    const std::string_view item(directives.data() + start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos || colon == 0)
      throw std::invalid_argument("fault directive '" + std::string(item) +
                                  "' is not <site>:<spec>");
    parsed.emplace_back(std::string(item.substr(0, colon)),
                        parse_spec(item.substr(colon + 1)));
  }
  std::scoped_lock lock(reg.mutex);
  for (const auto& [site, spec] : parsed)
    detail::arm_one_locked(reg, site, spec);
  detail::refresh_any_armed_locked(reg);
}

void disarm_all() {
  Registry& reg = Registry::global();
  std::scoped_lock lock(reg.mutex);
  reg.pending.clear();
  for (auto& [name, site] : reg.sites) {
    site->armed.store(false, std::memory_order_release);
    site->calls.store(0, std::memory_order_relaxed);
    site->fires.store(0, std::memory_order_relaxed);
  }
  detail::refresh_any_armed_locked(reg);
}

void arm_from_env() {
  static const bool once = [] {
    if (const char* env = std::getenv("RP_FAULT");
        env != nullptr && env[0] != '\0') {
      try {
        arm(env);
      } catch (const std::exception& e) {
        // A typo'd RP_FAULT must not silently run fault-free: the whole
        // point of the variable is to make this run fail somewhere.
        std::fprintf(stderr, "RP_FAULT: %s\n", e.what());
        std::abort();
      }
    }
    return true;
  }();
  (void)once;
}

std::vector<SiteStatus> site_status() {
  Registry& reg = Registry::global();
  std::scoped_lock lock(reg.mutex);
  std::vector<SiteStatus> out;
  out.reserve(reg.sites.size());
  for (const auto& [name, site] : reg.sites) {
    SiteStatus status;
    status.name = name;
    status.armed = site->armed.load(std::memory_order_relaxed);
    status.calls = site->calls.load(std::memory_order_relaxed);
    status.fires = site->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace rp::fault

// NetFlow-style records and the NetFlow/BGP join.
//
// The paper collects one month of NetFlow at the vantage's border routers
// and joins it with the routers' BGP tables to attribute every flow to an
// AS-level path (§4.1). FlowSampler emits address-level records from the
// rate model; NetFlowCollector performs the join back to per-network rates
// via longest-prefix match into the vantage RIB — closing the loop the way
// the paper's tooling does.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bgp/rib.hpp"
#include "flow/rate_model.hpp"
#include "util/rng.hpp"

namespace rp::flow {

/// One exported flow record (5-minute bin granularity).
struct FlowRecord {
  std::size_t bin = 0;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  Direction direction = Direction::kInbound;
  double bytes = 0.0;
};

/// Draws address-level flow records consistent with the rate model.
class FlowSampler {
 public:
  FlowSampler(const topology::AsGraph& graph, net::Asn vantage,
              const RateModel& rates, util::Rng rng);

  /// Records for one bin. Every network whose bin rate is at least
  /// `min_rate_bps` yields up to `max_flows_per_network` records per
  /// direction; bytes split randomly among them and sum to rate * bin.
  std::vector<FlowRecord> sample_bin(std::size_t bin, double min_rate_bps,
                                     std::size_t max_flows_per_network);

 private:
  net::Ipv4Addr random_address_in(const topology::AsNode& node);

  const topology::AsGraph* graph_;
  const topology::AsNode* vantage_node_;
  const RateModel* rates_;
  util::Rng rng_;
};

/// Joins flow records with the vantage RIB (longest-prefix match) to recover
/// per-network byte counts — the paper's NetFlow/BGP join.
class NetFlowCollector {
 public:
  explicit NetFlowCollector(const bgp::Rib& rib) : rib_(&rib) {}

  void add(const FlowRecord& record);

  struct PerNetwork {
    double inbound_bytes = 0.0;
    double outbound_bytes = 0.0;
    std::size_t records = 0;
  };

  const std::unordered_map<net::Asn, PerNetwork>& by_network() const {
    return by_network_;
  }
  /// Records whose remote address matched no routed prefix.
  std::size_t unclassified() const { return unclassified_; }
  std::size_t record_count() const { return records_; }

 private:
  const bgp::Rib* rib_;
  std::unordered_map<net::Asn, PerNetwork> by_network_;
  std::size_t unclassified_ = 0;
  std::size_t records_ = 0;
};

}  // namespace rp::flow

#include "flow/rate_model.hpp"

#include <cmath>

namespace rp::flow {
namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform in [0,1) from a hash.
double hash_uniform(std::uint64_t key) {
  return static_cast<double>(mix(key) >> 11) * 0x1.0p-53;
}

/// Standard normal from two hashed uniforms (Box-Muller).
double hash_normal(std::uint64_t key) {
  const double u1 = std::max(1e-12, hash_uniform(key));
  const double u2 = hash_uniform(key ^ 0xABCDEF1234567890ULL);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace

RateModel::RateModel(const TrafficMatrix& matrix, RateModelConfig config)
    : matrix_(&matrix), config_(config) {}

std::size_t RateModel::bin_count() const {
  return static_cast<std::size_t>(config_.span.count_nanos() /
                                  config_.bin_length.count_nanos());
}

double RateModel::modulation(std::size_t bin, Direction dir,
                             double phase_offset_hours) const {
  const double hours_per_bin =
      config_.bin_length.as_seconds_f() / 3600.0;
  const double t_hours = static_cast<double>(bin) * hours_per_bin;
  const double hour_of_day =
      std::fmod(t_hours + phase_offset_hours, 24.0);
  const double amplitude = dir == Direction::kInbound
                               ? config_.diurnal_amplitude_in
                               : config_.diurnal_amplitude_out;
  const double daily =
      1.0 + amplitude * std::cos(kTwoPi * (hour_of_day - config_.peak_hour) /
                                 24.0);
  const int day_index = static_cast<int>(t_hours / 24.0);
  // Day 0 is a Monday; days 5 and 6 of each week are the weekend.
  const bool weekend = (day_index % 7) >= 5;
  return daily * (weekend ? config_.weekend_factor : 1.0);
}

double RateModel::noise(net::Asn asn, Direction dir, std::size_t bin) const {
  const std::uint64_t key =
      config_.seed ^ (static_cast<std::uint64_t>(asn.value()) << 20) ^
      (static_cast<std::uint64_t>(bin) << 2) ^
      (dir == Direction::kInbound ? 0u : 1u);
  return std::exp(config_.noise_sigma * hash_normal(key));
}

double RateModel::phase_offset_hours(net::Asn asn) const {
  const std::uint64_t key = config_.seed ^ 0xFEEDULL ^ asn.value();
  return config_.phase_jitter_hours * hash_normal(key);
}

double RateModel::rate_bps(net::Asn asn, Direction dir,
                           std::size_t bin) const {
  const NetworkContribution* c = matrix_->find(asn);
  if (c == nullptr) return 0.0;
  const double base =
      dir == Direction::kInbound ? c->inbound_bps : c->outbound_bps;
  if (base <= 0.0) return 0.0;
  return base * modulation(bin, dir, phase_offset_hours(asn)) *
         noise(asn, dir, bin);
}

std::vector<double> RateModel::aggregate_series(
    const std::vector<net::Asn>& networks, Direction dir) const {
  const std::size_t bins = bin_count();
  std::vector<double> series(bins, 0.0);
  for (net::Asn asn : networks) {
    const NetworkContribution* c = matrix_->find(asn);
    if (c == nullptr) continue;
    const double base =
        dir == Direction::kInbound ? c->inbound_bps : c->outbound_bps;
    if (base <= 0.0) continue;
    const double phase = phase_offset_hours(asn);
    for (std::size_t bin = 0; bin < bins; ++bin)
      series[bin] += base * modulation(bin, dir, phase) * noise(asn, dir, bin);
  }
  return series;
}

}  // namespace rp::flow

#include "flow/traffic_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace rp::flow {

const NetworkContribution* TrafficMatrix::find(net::Asn asn) const {
  const auto it = index_.find(asn);
  return it == index_.end() ? nullptr : &ranked_[it->second];
}

TrafficMatrix TrafficMatrix::generate(const topology::AsGraph& graph,
                                      net::Asn vantage,
                                      const TrafficConfig& config,
                                      util::Rng& rng) {
  // Order candidate networks by popularity (with jitter): the rank decides
  // where each lands on the rank-size curve.
  struct Candidate {
    net::Asn asn;
    double weight;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(graph.as_count());
  for (const auto& node : graph.nodes()) {
    if (node.asn == vantage) continue;
    const double jitter = rng.lognormal(0.0, config.rank_jitter_sigma);
    candidates.push_back({node.asn, node.traffic_scale * jitter});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.weight > b.weight;
            });

  const std::size_t knee = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.knee_fraction *
                                  static_cast<double>(candidates.size())));
  const util::DoubleParetoSampler law(1.0, config.head_alpha,
                                      config.tail_alpha, knee);

  TrafficMatrix matrix;
  matrix.ranked_.reserve(candidates.size());
  double sum_in = 0.0, sum_out = 0.0;
  for (std::size_t rank = 0; rank < candidates.size(); ++rank) {
    NetworkContribution c;
    c.asn = candidates[rank].asn;
    const double volume = law.volume_at_rank(rank + 1);
    // Per-network direction split: content-heavy networks push traffic at
    // us, eyeball-ish ones pull; lognormal ratio keeps both realistic.
    const double ratio = rng.lognormal(0.0, config.direction_ratio_sigma);
    c.inbound_bps = volume;
    c.outbound_bps = volume * ratio;
    sum_in += c.inbound_bps;
    sum_out += c.outbound_bps;
    matrix.ranked_.push_back(c);
  }

  // Normalize each direction to the configured totals.
  const double in_scale =
      sum_in > 0.0 ? config.total_inbound_gbps * 1e9 / sum_in : 0.0;
  const double out_scale =
      sum_out > 0.0 ? config.total_outbound_gbps * 1e9 / sum_out : 0.0;
  for (auto& c : matrix.ranked_) {
    c.inbound_bps *= in_scale;
    c.outbound_bps *= out_scale;
  }

  // Re-rank by total contribution after the direction split.
  std::sort(matrix.ranked_.begin(), matrix.ranked_.end(),
            [](const NetworkContribution& a, const NetworkContribution& b) {
              return a.total_bps() > b.total_bps();
            });
  for (std::size_t i = 0; i < matrix.ranked_.size(); ++i)
    matrix.index_.emplace(matrix.ranked_[i].asn, i);
  matrix.total_in_ = config.total_inbound_gbps * 1e9;
  matrix.total_out_ = config.total_outbound_gbps * 1e9;
  return matrix;
}

}  // namespace rp::flow

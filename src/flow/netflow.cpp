#include "flow/netflow.hpp"

namespace rp::flow {

FlowSampler::FlowSampler(const topology::AsGraph& graph, net::Asn vantage,
                         const RateModel& rates, util::Rng rng)
    : graph_(&graph),
      vantage_node_(&graph.node(vantage)),
      rates_(&rates),
      rng_(rng) {}

net::Ipv4Addr FlowSampler::random_address_in(const topology::AsNode& node) {
  const auto& prefixes = node.prefixes;
  const auto& prefix =
      prefixes[prefixes.size() == 1
                   ? 0
                   : rng_.uniform_int(0, prefixes.size() - 1)];
  return prefix.address_at(rng_.uniform_int(0, prefix.size() - 1));
}

std::vector<FlowRecord> FlowSampler::sample_bin(
    std::size_t bin, double min_rate_bps, std::size_t max_flows_per_network) {
  std::vector<FlowRecord> records;
  const double bin_seconds =
      rates_->config().bin_length.as_seconds_f();

  for (const auto& node : graph_->nodes()) {
    if (node.asn == vantage_node_->asn) continue;
    for (const Direction dir : {Direction::kInbound, Direction::kOutbound}) {
      const double rate = rates_->rate_bps(node.asn, dir, bin);
      if (rate < min_rate_bps) continue;
      const double total_bytes = rate * bin_seconds / 8.0;
      const std::size_t flows =
          1 + rng_.uniform_int(0, max_flows_per_network - 1);
      // Random split of the bin's bytes across the flows.
      std::vector<double> weights(flows);
      double weight_sum = 0.0;
      for (auto& w : weights) {
        w = rng_.uniform(0.2, 1.0);
        weight_sum += w;
      }
      for (double w : weights) {
        FlowRecord record;
        record.bin = bin;
        record.direction = dir;
        record.bytes = total_bytes * (w / weight_sum);
        const net::Ipv4Addr remote = random_address_in(node);
        const net::Ipv4Addr local = random_address_in(*vantage_node_);
        if (dir == Direction::kInbound) {
          record.src = remote;
          record.dst = local;
        } else {
          record.src = local;
          record.dst = remote;
        }
        records.push_back(record);
      }
    }
  }
  return records;
}

void NetFlowCollector::add(const FlowRecord& record) {
  ++records_;
  const net::Ipv4Addr remote =
      record.direction == Direction::kInbound ? record.src : record.dst;
  const auto origin = rib_->lookup_origin(remote);
  if (!origin) {
    ++unclassified_;
    return;
  }
  PerNetwork& entry = by_network_[*origin];
  ++entry.records;
  if (record.direction == Direction::kInbound) {
    entry.inbound_bytes += record.bytes;
  } else {
    entry.outbound_bytes += record.bytes;
  }
}

}  // namespace rp::flow

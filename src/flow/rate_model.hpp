// Time structure of the traffic: 5-minute bins with diurnal and weekly
// periodicity plus per-bin noise.
//
// Fig. 5b of the paper shows one month of RedIRIS transit traffic at 5-minute
// granularity with clearly pronounced daily and weekly fluctuations, and the
// offload potential peaking together with the total — the property that makes
// offload reduce 95th-percentile transit bills. The model is deterministic:
// the rate of network E at bin k is its average rate times shared diurnal and
// weekly factors (with a small per-network phase) times hash-seeded noise,
// so series can be recomputed bin-by-bin without storing a matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/traffic_matrix.hpp"
#include "util/sim_time.hpp"

namespace rp::flow {

/// Knobs of the temporal model.
struct RateModelConfig {
  util::SimDuration bin_length = util::SimDuration::minutes(5);
  util::SimDuration span = util::SimDuration::days(28);
  /// Relative amplitude of the daily cycle per direction.
  double diurnal_amplitude_in = 0.45;
  double diurnal_amplitude_out = 0.30;
  /// Hour of peak traffic (local time of the vantage).
  double peak_hour = 21.0;
  /// Weekend rate multiplier (research network: weekends are quiet).
  double weekend_factor = 0.70;
  /// Lognormal sigma of per-bin multiplicative noise.
  double noise_sigma = 0.18;
  /// Sigma (hours) of each network's diurnal phase offset.
  double phase_jitter_hours = 1.2;
  std::uint64_t seed = 0x5eedf00d;
};

/// Deterministic per-bin rates for the networks of a TrafficMatrix.
class RateModel {
 public:
  RateModel(const TrafficMatrix& matrix, RateModelConfig config);

  std::size_t bin_count() const;
  const RateModelConfig& config() const { return config_; }

  /// Rate (bps) of network `asn` in direction `dir` during bin `bin`.
  double rate_bps(net::Asn asn, Direction dir, std::size_t bin) const;

  /// Sum of rates over an arbitrary set of networks for every bin — used
  /// for the Fig. 5b series (all transit networks vs the offloadable set).
  std::vector<double> aggregate_series(const std::vector<net::Asn>& networks,
                                       Direction dir) const;

  /// The diurnal/weekly modulation factor at a bin for a given phase offset
  /// (exposed for tests).
  double modulation(std::size_t bin, Direction dir,
                    double phase_offset_hours) const;

 private:
  double noise(net::Asn asn, Direction dir, std::size_t bin) const;
  double phase_offset_hours(net::Asn asn) const;

  const TrafficMatrix* matrix_;
  RateModelConfig config_;
};

}  // namespace rp::flow

// The vantage network's inter-domain traffic matrix.
//
// Substitute for the RedIRIS NetFlow ground truth (§4.1): for every other
// network, an average inbound rate (traffic the vantage receives that the
// network originates) and outbound rate (traffic the vantage sends that the
// network terminates). Contributions follow a rank-size law with a knee —
// Fig. 5a shows a few near-Gbps contributors, a long gentle tail, and a bend
// around rank ~20,000 where individual contributions start falling faster.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace rp::flow {

/// Traffic direction relative to the vantage network.
enum class Direction { kInbound, kOutbound };

/// One remote network's average contribution to the vantage's traffic.
struct NetworkContribution {
  net::Asn asn;
  double inbound_bps = 0.0;   ///< The network originates this much toward us.
  double outbound_bps = 0.0;  ///< We send this much toward the network.

  double total_bps() const { return inbound_bps + outbound_bps; }
};

/// Knobs of the traffic matrix generator. Defaults reproduce the RedIRIS
/// regime: ~8 Gbps inbound / ~5 Gbps outbound of transit-provider traffic
/// at the busiest times, heavy-tailed across contributing networks.
struct TrafficConfig {
  double total_inbound_gbps = 8.0;
  double total_outbound_gbps = 5.0;
  /// Rank-size exponent before the knee (gentle decline).
  double head_alpha = 0.85;
  /// Rank-size exponent after the knee (the Fig. 5a bend to faster decline).
  double tail_alpha = 2.4;
  /// Knee position as a fraction of ranked networks (paper: ~20k of 29.5k).
  double knee_fraction = 0.67;
  /// Lognormal sigma of the multiplicative jitter on individual ranks.
  double rank_jitter_sigma = 0.5;
  /// Lognormal sigma of the per-network outbound/inbound ratio.
  double direction_ratio_sigma = 0.7;
};

/// The full per-network matrix for one vantage.
class TrafficMatrix {
 public:
  /// Contributions in decreasing order of total rate.
  const std::vector<NetworkContribution>& ranked() const { return ranked_; }

  const NetworkContribution* find(net::Asn asn) const;

  double total_inbound_bps() const { return total_in_; }
  double total_outbound_bps() const { return total_out_; }
  std::size_t network_count() const { return ranked_.size(); }

  /// Builds the matrix over every AS in the graph except the vantage
  /// itself. Rates are assigned by a double-Pareto rank-size law over the
  /// networks' popularity (AsNode::traffic_scale) with multiplicative
  /// jitter, then normalized to the configured totals.
  static TrafficMatrix generate(const topology::AsGraph& graph,
                                net::Asn vantage, const TrafficConfig& config,
                                util::Rng& rng);

 private:
  std::vector<NetworkContribution> ranked_;
  std::unordered_map<net::Asn, std::size_t> index_;
  double total_in_ = 0.0;
  double total_out_ = 0.0;
};

}  // namespace rp::flow

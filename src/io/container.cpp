#include "io/container.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <limits>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace rp::io {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
/// Bytes per section-table entry: id, reserved, offset, size, checksum.
constexpr std::size_t kEntryBytes = 4 + 4 + 8 + 8 + 8;
constexpr std::size_t kHeaderBytes = kMagic.size() + 4 + 4;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::uint64_t fnv1a64_accumulate(std::uint64_t state,
                                 std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    state ^= b;
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  return fnv1a64_accumulate(kFnvOffset, data);
}

// --- ByteWriter --------------------------------------------------------------

void ByteWriter::u32_fixed(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::u64_fixed(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void ByteWriter::varint(std::uint64_t v) {
  util::varint_encode(bytes_, v);
}

void ByteWriter::svarint(std::int64_t v) { varint(util::zigzag_encode(v)); }

void ByteWriter::f64(double v) { u64_fixed(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

// --- ByteReader --------------------------------------------------------------

void ByteReader::underrun() const {
  throw SnapshotError(
      "snapshot " + context_ + ": truncated (read past end of section)",
      SnapshotErrorClass::kTruncated);
}

std::uint8_t ByteReader::u8() {
  if (pos_ >= data_.size()) underrun();
  return data_[pos_++];
}

std::uint32_t ByteReader::u32_fixed() {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(u8()) << shift;
  return v;
}

std::uint64_t ByteReader::u64_fixed() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(u8()) << shift;
  return v;
}

std::uint64_t ByteReader::varint() {
  const util::VarintResult r = util::varint_decode(data_.subspan(pos_));
  switch (r.status) {
    case util::VarintStatus::kTruncated:
      underrun();
    case util::VarintStatus::kOverflow:
      throw SnapshotError("snapshot " + context_ +
                          ": varint overflows (or exceeds 10 bytes)");
    case util::VarintStatus::kOk:
      break;
  }
  pos_ += r.consumed;
  return r.value;
}

std::int64_t ByteReader::svarint() { return util::zigzag_decode(varint()); }

double ByteReader::f64() { return std::bit_cast<double>(u64_fixed()); }

std::string ByteReader::str() {
  const std::uint64_t n = varint();
  if (n > remaining()) underrun();
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void ByteReader::expect_end() const {
  if (pos_ != data_.size())
    throw SnapshotError("snapshot " + context_ + ": " +
                        std::to_string(data_.size() - pos_) +
                        " trailing bytes after decode");
}

// --- ContainerWriter ---------------------------------------------------------

void ContainerWriter::add_section(std::uint32_t id,
                                  std::vector<std::uint8_t> payload) {
  for (const auto& s : sections_)
    if (s.id == id)
      throw SnapshotError("container: duplicate section id " +
                          std::to_string(id));
  sections_.push_back(Pending{id, std::move(payload)});
}

std::vector<std::uint8_t> ContainerWriter::serialize() const {
  ByteWriter out;
  for (std::uint8_t b : kMagic) out.u8(b);
  out.u32_fixed(kFormatVersion);
  out.u32_fixed(static_cast<std::uint32_t>(sections_.size()));
  std::uint64_t offset = kHeaderBytes + kEntryBytes * sections_.size();
  for (const auto& s : sections_) {
    out.u32_fixed(s.id);
    out.u32_fixed(0);  // Reserved.
    out.u64_fixed(offset);
    out.u64_fixed(s.payload.size());
    out.u64_fixed(fnv1a64(s.payload));
    offset += s.payload.size();
  }
  std::vector<std::uint8_t> bytes = std::move(out).take();
  bytes.reserve(offset);
  for (const auto& s : sections_)
    bytes.insert(bytes.end(), s.payload.begin(), s.payload.end());
  return bytes;
}

void write_bytes_atomic(std::span<const std::uint8_t> bytes,
                        const std::filesystem::path& path) {
  // io.write decides up front: a corruption action writes a complete-but-
  // corrupt image (the read side must catch it via checksums), while a throw
  // action simulates a crash after half the bytes hit the temp file — the
  // rename must never happen and the temp file must not linger.
  static fault::Site site(fault::kSiteIoWrite);
  std::span<const std::uint8_t> to_write = bytes;
  std::vector<std::uint8_t> corrupted;
  bool injected_crash = false;
  if (auto action = site.fire()) {
    if (*action == fault::Action::kThrow) {
      injected_crash = true;
    } else {
      corrupted.assign(bytes.begin(), bytes.end());
      site.apply(*action, corrupted);
      to_write = corrupted;
    }
  }

  std::filesystem::path tmp = path;
  tmp += ".tmp";
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os)
        throw SnapshotError("cannot open " + tmp.string() + " for writing",
                            SnapshotErrorClass::kIo);
      const std::size_t head =
          injected_crash ? to_write.size() / 2 : to_write.size();
      os.write(reinterpret_cast<const char*>(to_write.data()),
               static_cast<std::streamsize>(head));
      os.flush();
      if (!os)
        throw SnapshotError("short write to " + tmp.string(),
                            SnapshotErrorClass::kIo);
    }
    if (injected_crash) site.raise();
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
      throw SnapshotError("cannot rename " + tmp.string() + " over " +
                              path.string() + ": " + ec.message(),
                          SnapshotErrorClass::kIo);
  } catch (...) {
    // Whatever failed, never leave a partial temp file next to the target.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  static obs::Counter written("rp.io.bytes_written");
  written.add(to_write.size());
}

void ContainerWriter::write_file_atomic(
    const std::filesystem::path& path) const {
  write_bytes_atomic(serialize(), path);
}

// --- ContainerReader ---------------------------------------------------------

ContainerReader ContainerReader::from_bytes(std::vector<std::uint8_t> bytes) {
  ContainerReader reader;
  reader.bytes_ = std::move(bytes);
  const auto& data = reader.bytes_;
  if (data.size() < kHeaderBytes)
    throw SnapshotError("snapshot header: file too small (" +
                            std::to_string(data.size()) + " bytes)",
                        SnapshotErrorClass::kTruncated);
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (data[i] != kMagic[i])
      throw SnapshotError("snapshot header: bad magic (not a snapshot file)");
  const std::span<const std::uint8_t> whole(data);
  ByteReader header(whole.subspan(kMagic.size()), "header");
  reader.version_ = header.u32_fixed();
  if (reader.version_ > kFormatVersion)
    throw SnapshotError(
        "snapshot header: format version " + std::to_string(reader.version_) +
            " is newer than supported version " +
            std::to_string(kFormatVersion),
        SnapshotErrorClass::kVersion);
  const std::uint32_t count = header.u32_fixed();
  if (data.size() < kHeaderBytes + kEntryBytes * std::uint64_t{count})
    throw SnapshotError("snapshot header: section table truncated",
                        SnapshotErrorClass::kTruncated);
  ByteReader table(
      whole.subspan(kHeaderBytes, kEntryBytes * std::size_t{count}),
      "section table");
  reader.entries_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SectionEntry entry;
    entry.id = table.u32_fixed();
    table.u32_fixed();  // Reserved.
    entry.offset = table.u64_fixed();
    entry.size = table.u64_fixed();
    entry.checksum = table.u64_fixed();
    if (entry.offset > data.size() || entry.size > data.size() - entry.offset)
      throw SnapshotError("snapshot section " + std::to_string(entry.id) +
                              ": payload extends past end of file (truncated?)",
                          SnapshotErrorClass::kTruncated);
    for (const auto& prior : reader.entries_)
      if (prior.id == entry.id)
        throw SnapshotError("snapshot section table: duplicate section id " +
                            std::to_string(entry.id));
    reader.entries_.push_back(entry);
  }

  // Verify every checksum up front (in parallel) so no decoder ever touches
  // corrupt bytes. parallel_for rethrows the first failure. The io.verify
  // fault site fires per section and always throws (the payload span is
  // read-only here), which doubles as coverage for an exception escaping a
  // pool task mid-verification.
  static fault::Site verify_site(fault::kSiteIoVerify);
  util::ThreadPool::global().parallel_for(
      reader.entries_.size(), [&reader](std::size_t i) {
        verify_site.maybe_throw();
        const SectionEntry& entry = reader.entries_[i];
        const auto payload = std::span(reader.bytes_)
                                 .subspan(entry.offset, entry.size);
        const std::uint64_t actual = fnv1a64(payload);
        if (actual != entry.checksum)
          throw SnapshotError(
              "snapshot section " + std::to_string(entry.id) +
              ": checksum mismatch (stored " + hex16(entry.checksum) +
              ", computed " + hex16(actual) + ") — file is corrupt");
      });
  static obs::Counter verifies("rp.io.checksum.verifies");
  verifies.add(reader.entries_.size());
  return reader;
}

ContainerReader ContainerReader::from_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw SnapshotError("cannot open " + path.string(),
                        SnapshotErrorClass::kIo);
  std::vector<std::uint8_t> bytes;
  is.seekg(0, std::ios::end);
  const auto size = is.tellg();
  if (size < 0)
    throw SnapshotError("cannot stat " + path.string(),
                        SnapshotErrorClass::kIo);
  bytes.resize(static_cast<std::size_t>(size));
  is.seekg(0);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!is)
    throw SnapshotError("short read from " + path.string(),
                        SnapshotErrorClass::kIo);
  static fault::Site read_site(fault::kSiteIoRead);
  read_site.maybe_corrupt(bytes);
  static obs::Counter read("rp.io.bytes_read");
  read.add(bytes.size());
  return from_bytes(std::move(bytes));
}

bool ContainerReader::has(std::uint32_t id) const {
  for (const auto& entry : entries_)
    if (entry.id == id) return true;
  return false;
}

std::span<const std::uint8_t> ContainerReader::section(std::uint32_t id) const {
  for (const auto& entry : entries_)
    if (entry.id == id)
      return std::span(bytes_).subspan(entry.offset, entry.size);
  throw SnapshotError("snapshot: missing required section " +
                      std::to_string(id));
}

}  // namespace rp::io

#include "io/snapshot.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::io {
namespace {

// Shared by every per-section decode below; the per-thread shards keep the
// two concurrent decode tasks from contending.
obs::Histogram& section_decode_hist() {
  static obs::Histogram hist("rp.io.section.decode_ns");
  return hist;
}

// --- Shared field codecs -----------------------------------------------------

void encode_city(ByteWriter& out, const geo::City& city) {
  out.str(city.name);
  out.str(city.country);
  out.u8(static_cast<std::uint8_t>(city.continent));
  out.f64(city.position.latitude_deg);
  out.f64(city.position.longitude_deg);
}

geo::City decode_city(ByteReader& in) {
  geo::City city;
  city.name = in.str();
  city.country = in.str();
  const std::uint8_t continent = in.u8();
  if (continent > static_cast<std::uint8_t>(geo::Continent::kSouthAmerica))
    throw SnapshotError("snapshot: invalid continent code " +
                        std::to_string(continent));
  city.continent = static_cast<geo::Continent>(continent);
  city.position.latitude_deg = in.f64();
  city.position.longitude_deg = in.f64();
  return city;
}

void encode_prefix(ByteWriter& out, const net::Ipv4Prefix& prefix) {
  out.u32_fixed(prefix.network().to_u32());
  out.u8(static_cast<std::uint8_t>(prefix.length()));
}

net::Ipv4Prefix decode_prefix(ByteReader& in) {
  const net::Ipv4Addr network{in.u32_fixed()};
  const std::uint8_t length = in.u8();
  if (length > 32)
    throw SnapshotError("snapshot: invalid prefix length " +
                        std::to_string(length));
  const auto prefix = net::Ipv4Prefix::make(network, length);
  if (prefix.network() != network)
    throw SnapshotError("snapshot: prefix " + network.to_string() + "/" +
                        std::to_string(length) + " has host bits set");
  return prefix;
}

/// Reads a count that prefixes a list whose elements occupy at least
/// `min_element_bytes` each; bounds it by the remaining payload so corrupt
/// counts cannot trigger absurd allocations before the decode loop fails.
std::size_t checked_count(ByteReader& in, std::size_t min_element_bytes = 1) {
  const std::uint64_t count = in.varint();
  if (count * min_element_bytes > in.remaining())
    throw SnapshotError("snapshot: list count " + std::to_string(count) +
                        " exceeds section size");
  return static_cast<std::size_t>(count);
}

// --- kConfigSection ----------------------------------------------------------
// Field order here is the canonical encoding: config_digest hashes these
// bytes, so changing the order or adding a knob deliberately changes every
// cache key (stale snapshots for older configs simply stop matching).

std::vector<std::uint8_t> encode_config(const core::ScenarioConfig& config) {
  ByteWriter out;
  const topology::GeneratorConfig& topo = config.topology;
  out.varint(topo.tier1_count);
  out.varint(topo.tier2_count);
  out.varint(topo.access_count);
  out.varint(topo.content_count);
  out.varint(topo.cdn_count);
  out.varint(topo.nren_count);
  out.varint(topo.enterprise_count);
  out.f64(topo.multihoming_mean);
  out.f64(topo.tier2_peering_prob);
  out.f64(topo.content_access_peering_prob);
  out.u8(topo.nren_backbone ? 1 : 0);
  out.varint(topo.first_asn);
  out.f64(topo.popularity_zipf_exponent);

  out.u8(config.euroix ? 1 : 0);
  out.f64(config.probe_headroom);
  out.f64(config.membership_scale);
  out.f64(config.appetite_alpha);
  out.f64(config.member_pool_size);
  out.f64(config.partner_ixp_share);
  out.f64(config.ip_transport_share);
  out.varint(config.vantage_cdn_peerings);
  out.varint(config.seed);
  // Trailing optional field: written only when set, so every pre-existing
  // config keeps its digest (and cached snapshot) unchanged.
  if (config.measure_all_ixps) out.u8(1);
  return std::move(out).take();
}

core::ScenarioConfig decode_config(std::span<const std::uint8_t> payload) {
  ByteReader in(payload, "config section");
  core::ScenarioConfig config;
  topology::GeneratorConfig& topo = config.topology;
  topo.tier1_count = static_cast<std::size_t>(in.varint());
  topo.tier2_count = static_cast<std::size_t>(in.varint());
  topo.access_count = static_cast<std::size_t>(in.varint());
  topo.content_count = static_cast<std::size_t>(in.varint());
  topo.cdn_count = static_cast<std::size_t>(in.varint());
  topo.nren_count = static_cast<std::size_t>(in.varint());
  topo.enterprise_count = static_cast<std::size_t>(in.varint());
  topo.multihoming_mean = in.f64();
  topo.tier2_peering_prob = in.f64();
  topo.content_access_peering_prob = in.f64();
  topo.nren_backbone = in.u8() != 0;
  topo.first_asn = static_cast<std::uint32_t>(in.varint());
  topo.popularity_zipf_exponent = in.f64();

  config.euroix = in.u8() != 0;
  config.probe_headroom = in.f64();
  config.membership_scale = in.f64();
  config.appetite_alpha = in.f64();
  config.member_pool_size = in.f64();
  config.partner_ixp_share = in.f64();
  config.ip_transport_share = in.f64();
  config.vantage_cdn_peerings = static_cast<std::size_t>(in.varint());
  config.seed = in.varint();
  if (!in.at_end()) config.measure_all_ixps = in.u8() != 0;
  in.expect_end();
  return config;
}

// --- kNodesSection -----------------------------------------------------------

std::vector<std::uint8_t> encode_nodes(const topology::AsGraph& graph) {
  ByteWriter out;
  out.varint(graph.as_count());
  for (const topology::AsNode& node : graph.nodes()) {
    out.varint(node.asn.value());
    out.str(node.name);
    out.u8(static_cast<std::uint8_t>(node.cls));
    out.u8(static_cast<std::uint8_t>(node.policy));
    encode_city(out, node.home_city);
    out.varint(node.prefixes.size());
    for (const auto& prefix : node.prefixes) encode_prefix(out, prefix);
    out.f64(node.traffic_scale);
  }
  return std::move(out).take();
}

std::vector<topology::AsNode> decode_nodes(
    std::span<const std::uint8_t> payload) {
  ByteReader in(payload, "nodes section");
  const std::size_t count = checked_count(in);
  std::vector<topology::AsNode> nodes;
  nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    topology::AsNode node;
    node.asn = net::Asn{static_cast<std::uint32_t>(in.varint())};
    node.name = in.str();
    const std::uint8_t cls = in.u8();
    if (cls > static_cast<std::uint8_t>(topology::AsClass::kEnterprise))
      throw SnapshotError("snapshot: invalid AS class code " +
                          std::to_string(cls));
    node.cls = static_cast<topology::AsClass>(cls);
    const std::uint8_t policy = in.u8();
    if (policy >
        static_cast<std::uint8_t>(topology::PeeringPolicy::kRestrictive))
      throw SnapshotError("snapshot: invalid peering policy code " +
                          std::to_string(policy));
    node.policy = static_cast<topology::PeeringPolicy>(policy);
    node.home_city = decode_city(in);
    const std::size_t prefixes = checked_count(in, 5);
    node.prefixes.reserve(prefixes);
    for (std::size_t p = 0; p < prefixes; ++p)
      node.prefixes.push_back(decode_prefix(in));
    node.traffic_scale = in.f64();
    nodes.push_back(std::move(node));
  }
  in.expect_end();
  return nodes;
}

// --- kEdgesSection -----------------------------------------------------------
// Adjacency as node-index varints, per node, in exact insertion order. Node
// indices (not ASNs) keep the payload small and make dangling references
// detectable by a simple range check.

std::vector<std::uint8_t> encode_edges(const topology::AsGraph& graph) {
  ByteWriter out;
  out.varint(graph.as_count());
  auto write_list = [&graph, &out](std::span<const net::Asn> list) {
    out.varint(list.size());
    for (net::Asn asn : list) out.varint(graph.index_of(asn));
  };
  for (const topology::AsNode& node : graph.nodes()) {
    write_list(graph.providers_of(node.asn));
    write_list(graph.customers_of(node.asn));
    write_list(graph.peers_of(node.asn));
  }
  return std::move(out).take();
}

topology::AsGraph decode_graph(std::span<const std::uint8_t> edges_payload,
                               std::vector<topology::AsNode> nodes) {
  ByteReader in(edges_payload, "edges section");
  const std::size_t count = checked_count(in);
  if (count != nodes.size())
    throw SnapshotError("snapshot: edges section covers " +
                        std::to_string(count) + " nodes but nodes section has " +
                        std::to_string(nodes.size()));
  topology::AsGraph::SnapshotParts parts;
  parts.nodes = std::move(nodes);
  auto read_list = [&in, &parts](std::vector<net::Asn>& list) {
    const std::size_t n = checked_count(in);
    list.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t index = in.varint();
      if (index >= parts.nodes.size())
        throw SnapshotError("snapshot: edge references node index " +
                            std::to_string(index) + " out of range");
      list.push_back(parts.nodes[index].asn);
    }
  };
  parts.providers.resize(parts.nodes.size());
  parts.customers.resize(parts.nodes.size());
  parts.peers.resize(parts.nodes.size());
  for (std::size_t i = 0; i < parts.nodes.size(); ++i) {
    read_list(parts.providers[i]);
    read_list(parts.customers[i]);
    read_list(parts.peers[i]);
  }
  in.expect_end();
  try {
    return topology::AsGraph::restore(std::move(parts));
  } catch (const std::invalid_argument& e) {
    throw SnapshotError(std::string("snapshot: inconsistent graph: ") +
                        e.what());
  }
}

// --- kEcosystemSection -------------------------------------------------------

std::vector<std::uint8_t> encode_ecosystem(const ixp::IxpEcosystem& ecosystem) {
  ByteWriter out;
  out.varint(ecosystem.providers().size());
  for (const ixp::RemotePeeringProvider& provider : ecosystem.providers()) {
    out.str(provider.name);
    out.f64(provider.path_stretch);
    out.varint(provider.pops.size());
    for (const geo::City& pop : provider.pops) encode_city(out, pop);
  }
  out.varint(ecosystem.ixps().size());
  for (const ixp::Ixp& ixp : ecosystem.ixps()) {
    out.str(ixp.acronym());
    out.str(ixp.full_name());
    encode_city(out, ixp.city());
    out.f64(ixp.peak_traffic_tbps());
    encode_prefix(out, ixp.peering_lan());
    out.varint(static_cast<std::uint64_t>(ixp.site_count()));
    out.varint(ixp.looking_glasses().size());
    for (const ixp::LookingGlass& lg : ixp.looking_glasses()) {
      out.u8(lg.op == ixp::LgOperator::kPch ? 0 : 1);
      out.varint(static_cast<std::uint64_t>(lg.pings_per_query));
      out.u32_fixed(lg.addr.to_u32());
    }
    out.varint(ixp.interfaces().size());
    for (const ixp::MemberInterface& iface : ixp.interfaces()) {
      out.varint(iface.asn.value());
      out.u32_fixed(iface.addr.to_u32());
      for (std::uint8_t octet : iface.mac.octets()) out.u8(octet);
      out.u8(static_cast<std::uint8_t>(iface.kind));
      encode_city(out, iface.equipment_city);
      out.u8(iface.provider_index.has_value() ? 1 : 0);
      if (iface.provider_index) out.varint(*iface.provider_index);
      out.svarint(iface.circuit_one_way.count_nanos());
      out.u8(static_cast<std::uint8_t>((iface.uses_route_server ? 1 : 0) |
                                       (iface.discoverable ? 2 : 0)));
    }
  }
  return std::move(out).take();
}

ixp::IxpEcosystem decode_ecosystem(std::span<const std::uint8_t> payload) {
  ByteReader in(payload, "ecosystem section");
  ixp::IxpEcosystem ecosystem;
  const std::size_t providers = checked_count(in);
  for (std::size_t p = 0; p < providers; ++p) {
    ixp::RemotePeeringProvider provider;
    provider.name = in.str();
    provider.path_stretch = in.f64();
    const std::size_t pops = checked_count(in);
    provider.pops.reserve(pops);
    for (std::size_t c = 0; c < pops; ++c)
      provider.pops.push_back(decode_city(in));
    ecosystem.add_provider(std::move(provider));
  }
  const std::size_t ixps = checked_count(in);
  for (std::size_t x = 0; x < ixps; ++x) {
    std::string acronym = in.str();
    std::string full_name = in.str();
    geo::City city = decode_city(in);
    const double peak = in.f64();
    const net::Ipv4Prefix lan = decode_prefix(in);
    try {
      const ixp::IxpId id =
          ecosystem.add_ixp(std::move(acronym), std::move(full_name),
                            std::move(city), peak, lan);
      ixp::Ixp& ixp = ecosystem.ixp(id);
      ixp.set_site_count(static_cast<int>(in.varint()));
      const std::size_t lgs = checked_count(in);
      for (std::size_t g = 0; g < lgs; ++g) {
        ixp::LookingGlass lg;
        const std::uint8_t op = in.u8();
        if (op > 1)
          throw SnapshotError("snapshot: invalid looking-glass operator " +
                              std::to_string(op));
        lg.op = op == 0 ? ixp::LgOperator::kPch : ixp::LgOperator::kRipeNcc;
        lg.pings_per_query = static_cast<int>(in.varint());
        lg.addr = net::Ipv4Addr{in.u32_fixed()};
        ixp.add_looking_glass(lg);
      }
      const std::size_t ifaces = checked_count(in);
      for (std::size_t i = 0; i < ifaces; ++i) {
        ixp::MemberInterface iface;
        iface.asn = net::Asn{static_cast<std::uint32_t>(in.varint())};
        iface.addr = net::Ipv4Addr{in.u32_fixed()};
        std::array<std::uint8_t, 6> mac;
        for (std::uint8_t& octet : mac) octet = in.u8();
        iface.mac = net::MacAddr{mac};
        const std::uint8_t kind = in.u8();
        if (kind > static_cast<std::uint8_t>(ixp::AttachmentKind::kPartnerIxp))
          throw SnapshotError("snapshot: invalid attachment kind " +
                              std::to_string(kind));
        iface.kind = static_cast<ixp::AttachmentKind>(kind);
        iface.equipment_city = decode_city(in);
        if (in.u8() != 0)
          iface.provider_index = static_cast<std::size_t>(in.varint());
        iface.circuit_one_way = util::SimDuration::nanos(in.svarint());
        const std::uint8_t flags = in.u8();
        iface.uses_route_server = (flags & 1) != 0;
        iface.discoverable = (flags & 2) != 0;
        if (iface.provider_index &&
            *iface.provider_index >= ecosystem.providers().size())
          throw SnapshotError("snapshot: interface references provider " +
                              std::to_string(*iface.provider_index) +
                              " out of range");
        ixp.add_interface(std::move(iface));
      }
    } catch (const std::invalid_argument& e) {
      // add_ixp/set_site_count/add_interface invariant violations become
      // snapshot errors (duplicate acronym, address outside LAN, ...).
      throw SnapshotError(std::string("snapshot: inconsistent ecosystem: ") +
                          e.what());
    }
  }
  in.expect_end();
  return ecosystem;
}

// --- kVantageSection ---------------------------------------------------------

std::vector<std::uint8_t> encode_vantage(const core::WorldView& world) {
  ByteWriter out;
  out.varint(world.vantage.value());
  out.varint(world.measured_ixps.size());
  for (ixp::IxpId id : world.measured_ixps) out.varint(id);
  return std::move(out).take();
}

// --- kConesSection -----------------------------------------------------------
// Each mask's words are varint-packed: stub cones are almost entirely zero
// words (one byte each), so the section stays a few MB even at paper scale.

std::vector<std::uint8_t> encode_cones(const topology::AsGraph::ConeMemo& memo) {
  ByteWriter out;
  out.varint(memo.masks.size());
  for (const util::DynamicBitset& mask : memo.masks) {
    out.varint(mask.size());
    for (std::uint64_t word : mask.words()) out.varint(word);
  }
  for (std::uint64_t addresses : memo.addresses) out.varint(addresses);
  for (std::size_t size : memo.sizes) out.varint(size);
  return std::move(out).take();
}

topology::AsGraph::ConeMemo decode_cones(std::span<const std::uint8_t> payload,
                                         std::size_t as_count) {
  ByteReader in(payload, "cones section");
  topology::AsGraph::ConeMemo memo;
  const std::size_t count = checked_count(in);
  if (count != as_count)
    throw SnapshotError("snapshot: cone memo covers " + std::to_string(count) +
                        " nodes but the graph has " + std::to_string(as_count));
  memo.masks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t bits = in.varint();
    if (bits != as_count)
      throw SnapshotError("snapshot: cone mask width mismatch");
    std::vector<std::uint64_t> words((bits + 63) / 64);
    for (std::uint64_t& word : words) word = in.varint();
    try {
      memo.masks.push_back(
          util::DynamicBitset::from_words(as_count, std::move(words)));
    } catch (const std::invalid_argument& e) {
      throw SnapshotError(std::string("snapshot: invalid cone mask: ") +
                          e.what());
    }
  }
  memo.addresses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) memo.addresses.push_back(in.varint());
  memo.sizes.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    memo.sizes.push_back(static_cast<std::size_t>(in.varint()));
  in.expect_end();
  return memo;
}

// --- kRibSection -------------------------------------------------------------

std::vector<std::uint8_t> encode_rib(const topology::AsGraph& graph,
                                     const bgp::Rib& rib) {
  ByteWriter out;
  out.varint(rib.vantage().value());
  // Destinations in graph node order — the same order Rib::build inserts —
  // so restore() reproduces the RIB exactly.
  std::uint64_t routed = 0;
  for (const topology::AsNode& node : graph.nodes())
    if (rib.route_to(node.asn) != nullptr) ++routed;
  out.varint(routed);
  for (const topology::AsNode& node : graph.nodes()) {
    const bgp::Route* route = rib.route_to(node.asn);
    if (route == nullptr) continue;
    out.varint(node.asn.value());
    out.varint(route->destination.value());
    out.u8(static_cast<std::uint8_t>(route->source));
    out.varint(route->as_path.size());
    for (net::Asn hop : route->as_path) out.varint(hop.value());
  }
  return std::move(out).take();
}

bgp::Rib decode_rib(std::span<const std::uint8_t> payload,
                    const topology::AsGraph& graph) {
  ByteReader in(payload, "rib section");
  const net::Asn vantage{static_cast<std::uint32_t>(in.varint())};
  const std::size_t count = checked_count(in);
  std::vector<std::pair<net::Asn, bgp::Route>> routes;
  routes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const net::Asn destination{static_cast<std::uint32_t>(in.varint())};
    bgp::Route route;
    route.destination = net::Asn{static_cast<std::uint32_t>(in.varint())};
    const std::uint8_t source = in.u8();
    if (source > static_cast<std::uint8_t>(bgp::RouteSource::kProvider))
      throw SnapshotError("snapshot: invalid route source code " +
                          std::to_string(source));
    route.source = static_cast<bgp::RouteSource>(source);
    const std::size_t hops = checked_count(in);
    route.as_path.reserve(hops);
    for (std::size_t h = 0; h < hops; ++h)
      route.as_path.push_back(net::Asn{static_cast<std::uint32_t>(in.varint())});
    routes.emplace_back(destination, std::move(route));
  }
  in.expect_end();
  try {
    return bgp::Rib::restore(graph, vantage, routes);
  } catch (const std::exception& e) {
    throw SnapshotError(std::string("snapshot: inconsistent RIB: ") + e.what());
  }
}

}  // namespace

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kConfigSection: return "config";
    case kNodesSection: return "nodes";
    case kEdgesSection: return "edges";
    case kEcosystemSection: return "ecosystem";
    case kVantageSection: return "vantage";
    case kConesSection: return "cones";
    case kRibSection: return "rib";
  }
  return "?";
}

std::vector<std::uint8_t> encode_scenario(const core::WorldView& world,
                                          const SaveOptions& options) {
  obs::Span span("io.encode_scenario");
  const topology::AsGraph& graph = *world.graph;

  // Force the cone memo before fanning out so its (mutex-guarded) build does
  // not run concurrently with the node/edge encoders.
  topology::AsGraph::ConeMemo cones;
  if (options.with_cones) cones = graph.export_cones();

  // One encoder per section; parallel_transform keeps results in slot order,
  // so the assembled bytes are identical at any thread count.
  struct Job {
    std::uint32_t id;
    std::function<std::vector<std::uint8_t>()> encode;
  };
  std::vector<Job> jobs;
  jobs.push_back(
      {kConfigSection, [&world] { return encode_config(*world.config); }});
  jobs.push_back({kNodesSection, [&graph] { return encode_nodes(graph); }});
  jobs.push_back({kEdgesSection, [&graph] { return encode_edges(graph); }});
  jobs.push_back({kEcosystemSection, [&world] {
                    return encode_ecosystem(*world.ecosystem);
                  }});
  jobs.push_back(
      {kVantageSection, [&world] { return encode_vantage(world); }});
  if (options.with_cones)
    jobs.push_back({kConesSection, [&cones] { return encode_cones(cones); }});
  if (options.rib != nullptr)
    jobs.push_back({kRibSection, [&graph, rib = options.rib] {
                      return encode_rib(graph, *rib);
                    }});

  std::vector<std::vector<std::uint8_t>> payloads =
      util::ThreadPool::global().parallel_transform(
          jobs.size(), [&jobs](std::size_t i) { return jobs[i].encode(); });

  static obs::Counter encoded("rp.io.sections.encoded");
  encoded.add(jobs.size());
  ContainerWriter writer;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    writer.add_section(jobs[i].id, std::move(payloads[i]));
  return writer.serialize();
}

void save_scenario(const core::WorldView& world,
                   const std::filesystem::path& path,
                   const SaveOptions& options) {
  write_bytes_atomic(encode_scenario(world, options), path);
}

namespace {

std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw SnapshotError("cannot open " + path.string(),
                        SnapshotErrorClass::kIo);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  // The same logical site as ContainerReader::from_file — every snapshot
  // byte stream entering the process passes one io.read checkpoint.
  static fault::Site read_site(fault::kSiteIoRead);
  read_site.maybe_corrupt(bytes);
  static obs::Counter read("rp.io.bytes_read");
  read.add(bytes.size());
  return bytes;
}

}  // namespace

LoadedWorld decode_scenario(std::span<const std::uint8_t> bytes) {
  obs::Span span("io.decode_scenario");
  ContainerReader container =
      ContainerReader::from_bytes({bytes.begin(), bytes.end()});
  static obs::Counter decoded("rp.io.sections.decoded");
  decoded.add(container.sections().size());

  for (std::uint32_t id : {kConfigSection, kNodesSection, kEdgesSection,
                           kEcosystemSection, kVantageSection})
    if (!container.has(id))
      throw SnapshotError(std::string("snapshot: missing required section '") +
                          section_name(id) + "'");

  const core::ScenarioConfig config =
      decode_config(container.section(kConfigSection));

  // The graph chain (nodes -> edges -> cones) and the ecosystem decode are
  // independent; run them as two pool tasks.
  topology::AsGraph graph;
  bool had_cones = false;
  ixp::IxpEcosystem ecosystem;
  util::ThreadPool::global().parallel_for(2, [&](std::size_t task) {
    if (task == 0) {
      obs::ScopedTimer timer(section_decode_hist());
      std::vector<topology::AsNode> nodes =
          decode_nodes(container.section(kNodesSection));
      graph = decode_graph(container.section(kEdgesSection), std::move(nodes));
      if (container.has(kConesSection)) {
        graph.adopt_cones(
            decode_cones(container.section(kConesSection), graph.as_count()));
        had_cones = true;
      }
    } else {
      obs::ScopedTimer timer(section_decode_hist());
      ecosystem = decode_ecosystem(container.section(kEcosystemSection));
    }
  });

  // Cross-section consistency: interfaces must reference known ASes and the
  // vantage/measured ids must resolve.
  for (const ixp::Ixp& ixp : ecosystem.ixps())
    for (const ixp::MemberInterface& iface : ixp.interfaces())
      if (!graph.contains(iface.asn))
        throw SnapshotError("snapshot: " + ixp.acronym() +
                            " interface references unknown " +
                            iface.asn.to_string());

  ByteReader vantage_in(container.section(kVantageSection), "vantage section");
  const net::Asn vantage{static_cast<std::uint32_t>(vantage_in.varint())};
  if (!graph.contains(vantage))
    throw SnapshotError("snapshot: vantage " + vantage.to_string() +
                        " is not in the graph");
  const std::size_t measured = checked_count(vantage_in);
  std::vector<ixp::IxpId> measured_ixps;
  measured_ixps.reserve(measured);
  for (std::size_t i = 0; i < measured; ++i) {
    const std::uint64_t id = vantage_in.varint();
    if (id >= ecosystem.ixps().size())
      throw SnapshotError("snapshot: measured IXP id " + std::to_string(id) +
                          " out of range");
    measured_ixps.push_back(static_cast<ixp::IxpId>(id));
  }
  vantage_in.expect_end();

  LoadedWorld world{
      core::Scenario::from_parts(config, std::move(graph), std::move(ecosystem),
                                 vantage, std::move(measured_ixps)),
      std::nullopt, had_cones};
  if (container.has(kRibSection)) {
    obs::ScopedTimer timer(section_decode_hist());
    world.rib =
        decode_rib(container.section(kRibSection), world.scenario.graph());
  }
  return world;
}

LoadedWorld load_scenario(const std::filesystem::path& path) {
  return decode_scenario(read_file_bytes(path));
}

std::uint64_t config_digest(const core::ScenarioConfig& config) {
  return fnv1a64(encode_config(config));
}

std::string config_digest_hex(const core::ScenarioConfig& config) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(config_digest(config)));
  return buf;
}

std::filesystem::path cache_path(const core::ScenarioConfig& config,
                                 const std::filesystem::path& cache_dir) {
  return cache_dir / ("world-" + config_digest_hex(config) + ".rpsnap");
}

std::filesystem::path default_cache_dir() {
  if (const char* dir = std::getenv("RP_SNAPSHOT_CACHE");
      dir != nullptr && dir[0] != '\0')
    return dir;
  return ".rpsnap-cache";
}

SnapshotInfo snapshot_info(const std::filesystem::path& path) {
  SnapshotInfo info;
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  info.file_size = bytes.size();
  ContainerReader container = ContainerReader::from_bytes(bytes);
  info.format_version = container.version();
  info.sections = container.sections();

  LoadedWorld world = decode_scenario(bytes);
  const core::Scenario& scenario = world.scenario;
  info.config_digest = config_digest(scenario.config());
  info.seed = scenario.config().seed;
  info.as_count = scenario.graph().as_count();
  info.transit_links = scenario.graph().transit_link_count();
  info.peering_links = scenario.graph().peering_link_count();
  info.ixp_count = scenario.ecosystem().ixps().size();
  info.provider_count = scenario.ecosystem().providers().size();
  for (const ixp::Ixp& ixp : scenario.ecosystem().ixps())
    info.interface_count += ixp.interfaces().size();
  info.measured_ixp_count = scenario.measured_ixps().size();
  info.vantage_asn = scenario.vantage().value();
  info.has_cones = world.had_cones;
  info.has_rib = world.rib.has_value();
  if (world.rib) info.rib_destinations = world.rib->destination_count();
  return info;
}

std::optional<VerifyFailure> verify_snapshot(
    const std::filesystem::path& path) {
  try {
    LoadedWorld world = load_scenario(path);
    if (auto violation = world.scenario.graph().validate())
      return VerifyFailure{"graph invariant violated: " + *violation,
                           SnapshotErrorClass::kInvariant};
  } catch (const SnapshotError& e) {
    return VerifyFailure{e.what(), e.error_class()};
  } catch (const std::exception& e) {
    return VerifyFailure{e.what(), SnapshotErrorClass::kIo};
  }
  return std::nullopt;
}

}  // namespace rp::io

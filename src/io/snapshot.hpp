// Versioned binary world snapshots: save/load a whole core::Scenario (and
// optionally its computed hot caches) through the rp-snapshot container.
//
// A Scenario is fully determined by its config + seed, so a snapshot is a
// cache, not a source of truth — but construction at paper scale is costly
// while loading is mostly memcpy, and a snapshot file can be shared across
// processes (the prerequisite for sharded studies). Loads are byte-identical
// to the world that was saved: node order, adjacency order, interface order,
// and the cone memo all survive exactly, so SpreadStudy / OffloadAnalyzer
// outputs match a fresh build bit-for-bit at any RP_THREADS.
//
// Sections (see container.hpp for the envelope):
//   kConfigSection     ScenarioConfig (every knob, varint/f64-bit packed)
//   kNodesSection      AsNode list (asn, name, class, policy, city, prefixes)
//   kEdgesSection      per-node adjacency (providers/customers/peers) as
//                      node-index varints, preserving insertion order
//   kEcosystemSection  remote-peering providers + IXPs with interfaces & LGs
//   kVantageSection    vantage ASN + measured-IXP ids
//   kConesSection      (optional) customer-cone bitsets + address totals
//   kRibSection        (optional) the vantage RIB's selected routes
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "core/scenario.hpp"
#include "io/container.hpp"

namespace rp::io {

inline constexpr std::uint32_t kConfigSection = 1;
inline constexpr std::uint32_t kNodesSection = 2;
inline constexpr std::uint32_t kEdgesSection = 3;
inline constexpr std::uint32_t kEcosystemSection = 4;
inline constexpr std::uint32_t kVantageSection = 5;
inline constexpr std::uint32_t kConesSection = 6;
inline constexpr std::uint32_t kRibSection = 7;

/// Human-readable section name for CLI output ("?" for unknown ids).
const char* section_name(std::uint32_t id);

struct SaveOptions {
  /// Embed the customer-cone memo (forces computing it first) so loads skip
  /// the topological sweep.
  bool with_cones = true;
  /// Embed this RIB's routes (nullptr omits the section).
  const bgp::Rib* rib = nullptr;
};

/// Encodes a world view into a full container image. Section payloads are
/// encoded in parallel across rp::util::ThreadPool::global(); the bytes are
/// identical at any thread count. Epoch overlays (src/evolve) encode through
/// this entry point without materializing a Scenario copy.
std::vector<std::uint8_t> encode_scenario(const core::WorldView& world,
                                          const SaveOptions& options = {});

inline std::vector<std::uint8_t> encode_scenario(
    const core::Scenario& scenario, const SaveOptions& options = {}) {
  return encode_scenario(scenario.view(), options);
}

/// encode_scenario + atomic file write (temp file, then rename).
void save_scenario(const core::WorldView& world,
                   const std::filesystem::path& path,
                   const SaveOptions& options = {});

inline void save_scenario(const core::Scenario& scenario,
                          const std::filesystem::path& path,
                          const SaveOptions& options = {}) {
  save_scenario(scenario.view(), path, options);
}

/// A decoded snapshot: the world plus whatever optional artifacts it embeds.
struct LoadedWorld {
  core::Scenario scenario;
  /// Present when the snapshot carried a kRibSection.
  std::optional<bgp::Rib> rib;
  /// Whether the cone memo was embedded (it is adopted into the graph).
  bool had_cones = false;
};

/// Decodes a container image. Throws SnapshotError on any corruption,
/// truncation, version mismatch, or cross-section inconsistency — a failed
/// load never returns a partially populated world.
LoadedWorld decode_scenario(std::span<const std::uint8_t> bytes);

/// Reads, verifies, and decodes a snapshot file.
LoadedWorld load_scenario(const std::filesystem::path& path);

/// The cache key: FNV-1a over the canonical kConfigSection encoding of the
/// config, so any knob change (including nested topology knobs and the seed)
/// yields a different key.
std::uint64_t config_digest(const core::ScenarioConfig& config);
std::string config_digest_hex(const core::ScenarioConfig& config);

/// The cache file for a config: `<dir>/world-<digest16>.rpsnap`.
std::filesystem::path cache_path(const core::ScenarioConfig& config,
                                 const std::filesystem::path& cache_dir);

/// The default snapshot cache directory: $RP_SNAPSHOT_CACHE when set,
/// otherwise ".rpsnap-cache" under the current working directory.
std::filesystem::path default_cache_dir();

/// Summary of a snapshot file, for `rpworld info` / `rpworld diff`.
struct SnapshotInfo {
  std::uint32_t format_version = 0;
  std::uint64_t file_size = 0;
  std::vector<SectionEntry> sections;
  std::uint64_t config_digest = 0;
  std::uint64_t seed = 0;
  std::size_t as_count = 0;
  std::size_t transit_links = 0;
  std::size_t peering_links = 0;
  std::size_t ixp_count = 0;
  std::size_t provider_count = 0;
  std::size_t interface_count = 0;
  std::size_t measured_ixp_count = 0;
  std::uint32_t vantage_asn = 0;
  bool has_cones = false;
  bool has_rib = false;
  std::size_t rib_destinations = 0;
};

/// Fully decodes `path` and summarizes it (so a successful info implies a
/// loadable snapshot). Throws SnapshotError like load_scenario.
SnapshotInfo snapshot_info(const std::filesystem::path& path);

/// Why verification rejected a snapshot: the message plus the failure class
/// (whose enumerator value is the documented rpworld exit code).
struct VerifyFailure {
  std::string message;
  SnapshotErrorClass error_class = SnapshotErrorClass::kCorrupt;

  int exit_code() const { return static_cast<int>(error_class); }
};

/// Deep verification: load the snapshot and run the graph's structural
/// validation on top of the checksum/decode checks. Returns the classified
/// failure, or nullopt when the snapshot is sound.
std::optional<VerifyFailure> verify_snapshot(const std::filesystem::path& path);

}  // namespace rp::io

// The rp-snapshot binary container: a chunked, versioned, checksummed file
// format for world snapshots.
//
// Layout (all fixed-width fields little-endian):
//   magic[8]      "RPSNAP\r\n"   (the CRLF catches text-mode mangling)
//   u32           format version (kFormatVersion)
//   u32           section count
//   entry[count]  { u32 id, u32 reserved, u64 offset, u64 size, u64 fnv1a64 }
//   payloads...   (concatenated, at the offsets recorded in the table)
//
// Section payloads are opaque byte strings; higher layers (snapshot.cpp)
// encode them with the varint ByteWriter below. Every section carries its own
// 64-bit FNV-1a checksum, verified (in parallel) when a file is opened, so a
// truncated or bit-flipped snapshot is rejected before any decoding starts.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rp::io {

/// The failure classes a snapshot operation can report. The enumerator
/// values are the documented process exit codes of `rpworld verify` /
/// `rpworld diff`, so tools and CI can branch on *why* a snapshot was
/// rejected without parsing messages:
///   3  kIo         cannot open / short read / cannot rename
///   4  kCorrupt    bad magic, checksum mismatch, malformed or inconsistent
///                  payload (bit flips land here)
///   5  kTruncated  file or section shorter than its declared size
///   6  kVersion    format version newer than this build supports
///   7  kInvariant  decoded world fails graph structural validation
/// (0 = OK, 1 = worlds differ in `diff`, 2 = usage / unclassified error.)
enum class SnapshotErrorClass : int {
  kIo = 3,
  kCorrupt = 4,
  kTruncated = 5,
  kVersion = 6,
  kInvariant = 7,
};

/// Raised for every malformed-snapshot condition: bad magic, future format
/// version, truncated table or payload, checksum mismatch, decode underrun.
/// Carries the failure class so callers can map it to a distinct exit code.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(
      const std::string& what,
      SnapshotErrorClass error_class = SnapshotErrorClass::kCorrupt)
      : std::runtime_error(what), class_(error_class) {}

  SnapshotErrorClass error_class() const { return class_; }
  /// The documented rpworld exit code for this failure class.
  int exit_code() const { return static_cast<int>(class_); }

 private:
  SnapshotErrorClass class_;
};

/// Current container format version. Readers reject files with a greater
/// version outright (no forward compatibility); older versions may be
/// accepted once the format evolves.
inline constexpr std::uint32_t kFormatVersion = 1;

/// The 8-byte file magic.
inline constexpr std::array<std::uint8_t, 8> kMagic = {'R', 'P', 'S', 'N',
                                                       'A', 'P', '\r', '\n'};

/// Writes `bytes` to `path` atomically: a sibling ".tmp" file is written and
/// fsynced, then renamed over `path`, so readers never observe a
/// half-written file and a crash leaves the old snapshot intact.
void write_bytes_atomic(std::span<const std::uint8_t> bytes,
                        const std::filesystem::path& path);

/// 64-bit FNV-1a over a byte range.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
/// Continues an FNV-1a stream from a prior state (seed with kFnvOffset).
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
std::uint64_t fnv1a64_accumulate(std::uint64_t state,
                                 std::span<const std::uint8_t> data);

/// An append-only byte buffer with varint integer packing.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32_fixed(std::uint32_t v);
  void u64_fixed(std::uint64_t v);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// Zigzag-coded signed LEB128.
  void svarint(std::int64_t v);
  /// IEEE-754 bit pattern, 8 bytes LE (exact round trip).
  void f64(double v);
  /// Length-prefixed (varint) byte string.
  void str(std::string_view s);

  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// A bounds-checked reader over a byte span; throws SnapshotError (naming
/// `context`) on any read past the end or malformed varint.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data,
                      std::string context = "payload")
      : data_(data), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint32_t u32_fixed();
  std::uint64_t u64_fixed();
  std::uint64_t varint();
  std::int64_t svarint();
  double f64();
  std::string str();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Requires the reader to be fully consumed (catches trailing garbage).
  void expect_end() const;

 private:
  [[noreturn]] void underrun() const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// One section of a container file.
struct SectionEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;  ///< Payload offset from the start of the file.
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

/// Assembles a container. Sections appear in the file in add order.
class ContainerWriter {
 public:
  void add_section(std::uint32_t id, std::vector<std::uint8_t> payload);

  /// The full file image (header + table + payloads).
  std::vector<std::uint8_t> serialize() const;

  /// Writes atomically: serialize to `path` + ".tmp", then rename over
  /// `path`, so a crashed writer never leaves a half-written snapshot and
  /// concurrent readers see either the old file or the new one.
  void write_file_atomic(const std::filesystem::path& path) const;

 private:
  struct Pending {
    std::uint32_t id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Pending> sections_;
};

/// Parses and verifies a container image. Construction validates the magic,
/// version, and table geometry, then verifies every section checksum (fanned
/// out across rp::util::ThreadPool::global()); any failure throws
/// SnapshotError with a message naming the offending part.
class ContainerReader {
 public:
  static ContainerReader from_bytes(std::vector<std::uint8_t> bytes);
  static ContainerReader from_file(const std::filesystem::path& path);

  std::uint32_t version() const { return version_; }
  const std::vector<SectionEntry>& sections() const { return entries_; }
  bool has(std::uint32_t id) const;
  /// Payload of a section; throws SnapshotError if absent.
  std::span<const std::uint8_t> section(std::uint32_t id) const;

 private:
  ContainerReader() = default;
  std::vector<std::uint8_t> bytes_;
  std::vector<SectionEntry> entries_;
  std::uint32_t version_ = 0;
};

}  // namespace rp::io

// The economic model of §5: transit vs direct peering vs remote peering.
//
// A network delivers its traffic through three options (eq. 1): a fraction t
// via transit, d via direct peering at n distant IXPs, and r via remote
// peering at m further IXPs. Generalizing the measured diminishing marginal
// utility (Figs. 9/10), the transit fraction decays exponentially with the
// number of reached IXPs (eq. 3): t = exp(-b (n+m)). Costs (eqs. 4-6):
//   C_t = p * t,   C_d = g * n + u * d,   C_r = h * m + v * r,
// with the §2 orderings h < g (remote peering shares IXP-side costs) and
// u < v < p (remote peering's traffic cost sits between direct peering's and
// transit's). Closed forms: the optimal number of directly reached IXPs
// (eq. 11), the optimal number of additional remotely reached IXPs (eq. 13),
// and the viability condition g(p-v)/(h(p-u)) >= e^b (eq. 14).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace rp::econ {

/// Parameters of the cost model (the paper's p, g, u, h, v, b).
struct CostParameters {
  double transit_price = 1.0;          ///< p: normalized per-unit transit.
  double direct_fixed = 0.02;          ///< g: per-IXP cost, direct peering.
  double direct_unit = 0.20;           ///< u: per-unit cost, direct peering.
  double remote_fixed = 0.006;         ///< h: per-IXP cost, remote peering.
  double remote_unit = 0.45;           ///< v: per-unit cost, remote peering.
  double decay = 0.35;                 ///< b: transit-fraction decay (eq. 3).

  /// Checks the structural assumptions (ineqs. 7-8) and positivity.
  /// Returns an explanatory message for the first violation, or nullopt.
  std::optional<std::string> validate() const;
};

/// Traffic split for a given strategy (n directly, m remotely reached IXPs).
struct Allocation {
  double n = 0.0;
  double m = 0.0;
  double transit_fraction = 0.0;  ///< t = exp(-b (n+m)).
  double direct_fraction = 0.0;   ///< d = 1 - exp(-b n): realized first.
  double remote_fraction = 0.0;   ///< r = exp(-b n) - exp(-b (n+m)).
};

/// A numerically located cost minimum.
struct Optimum {
  double n = 0.0;
  double m = 0.0;
  double cost = 0.0;
};

class CostModel {
 public:
  /// Throws std::invalid_argument when parameters violate the assumptions.
  explicit CostModel(CostParameters params);

  const CostParameters& params() const { return params_; }

  /// t as a function of the total number of reached IXPs (eq. 3).
  double transit_fraction(double reached_ixps) const;

  /// Traffic split when peering directly at n IXPs and remotely at m more.
  Allocation allocation(double n, double m) const;

  /// Total delivery cost C(n, m) (eq. 9, with d and r from allocation()).
  double total_cost(double n, double m) const;

  /// Total cost restricted to transit + direct peering (eq. 10).
  double cost_without_remote(double n) const { return total_cost(n, 0.0); }

  /// Optimal number of directly reached IXPs ñ (eq. 11); clamped at 0 when
  /// even the first IXP does not pay off.
  double optimal_direct_n() const;
  /// The traffic fraction d̃ offloaded at the optimum (eq. 11).
  double optimal_direct_fraction() const;
  /// Optimal number of additional remotely reached IXPs m̃ (eq. 13), given
  /// the network already peers directly at ñ; clamped at 0.
  double optimal_remote_m() const;

  /// Left side of the viability condition: g (p - v) / (h (p - u)).
  double viability_ratio() const;
  /// Remote peering is economically viable iff viability_ratio() >= e^b
  /// (eq. 14) — equivalently m̃ >= 1.
  bool remote_viable() const;
  /// The largest decay b at which remote peering stays viable with these
  /// prices: b* = ln(viability_ratio()).
  double critical_decay() const;

  /// Numeric cross-check of eq. 13: the cost-minimizing m for a *fixed* n
  /// (the paper's sequential setting — first pick ñ, then widen with remote
  /// peering). Golden-section search over [0, max_m].
  double numeric_optimal_m_given_n(double n, double max_m = 60.0) const;

  /// The *joint* cost minimum over n, m >= 0: grid search at `step`
  /// resolution with golden-section refinement. Note the paper's eqs. 11/13
  /// describe the sequential strategy; the joint optimum shifts some
  /// directly-reached IXPs to remote ones whenever h < g, so its cost is a
  /// lower bound on the sequential strategy's.
  Optimum numeric_optimum(double max_n = 40.0, double max_m = 40.0,
                          double step = 0.05) const;

 private:
  CostParameters params_;
};

/// Fits the decay parameter b (eq. 3) from an empirical remaining-transit
/// curve: fractions[k] is the transit fraction remaining after reaching k
/// IXPs (fractions[0] == 1). Returns the fitted b. This is how the §4
/// measurements parameterize the §5 model.
double fit_decay_parameter(const std::vector<double>& remaining_fractions);

}  // namespace rp::econ

#include "econ/cost_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/fit.hpp"

namespace rp::econ {

std::optional<std::string> CostParameters::validate() const {
  if (transit_price <= 0.0 || direct_fixed <= 0.0 || direct_unit < 0.0 ||
      remote_fixed <= 0.0 || remote_unit < 0.0 || decay < 0.0)
    return "parameters must be positive (decay and unit costs may be zero)";
  if (!(remote_fixed < direct_fixed))
    return "ineq. 7 violated: remote fixed cost h must be below direct g";
  if (!(direct_unit < remote_unit))
    return "ineq. 8 violated: direct unit cost u must be below remote v";
  if (!(remote_unit < transit_price))
    return "ineq. 8 violated: remote unit cost v must be below transit p";
  return std::nullopt;
}

CostModel::CostModel(CostParameters params) : params_(params) {
  if (const auto problem = params_.validate())
    throw std::invalid_argument("CostModel: " + *problem);
}

double CostModel::transit_fraction(double reached_ixps) const {
  return std::exp(-params_.decay * reached_ixps);
}

Allocation CostModel::allocation(double n, double m) const {
  if (n < 0.0 || m < 0.0)
    throw std::invalid_argument("CostModel::allocation: negative IXP count");
  Allocation a;
  a.n = n;
  a.m = m;
  a.transit_fraction = transit_fraction(n + m);
  a.direct_fraction = 1.0 - transit_fraction(n);
  a.remote_fraction = transit_fraction(n) - a.transit_fraction;
  return a;
}

double CostModel::total_cost(double n, double m) const {
  const Allocation a = allocation(n, m);
  return params_.transit_price * a.transit_fraction +
         params_.direct_fixed * n + params_.direct_unit * a.direct_fraction +
         params_.remote_fixed * m + params_.remote_unit * a.remote_fraction;
}

double CostModel::optimal_direct_n() const {
  // Eq. 11: ñ = log(b (p - u) / g) / b. When the argument is <= 1 even one
  // directly reached IXP costs more than it saves.
  const double b = params_.decay;
  if (b == 0.0) return 0.0;
  const double argument =
      b * (params_.transit_price - params_.direct_unit) / params_.direct_fixed;
  if (argument <= 1.0) return 0.0;
  return std::log(argument) / b;
}

double CostModel::optimal_direct_fraction() const {
  return 1.0 - transit_fraction(optimal_direct_n());
}

double CostModel::optimal_remote_m() const {
  // Eq. 13: m̃ = log(g (p - v) / (h (p - u))) / b. The closed form
  // substitutes the interior ñ of eq. 11; when ñ clamps to 0 (direct
  // peering never pays) the continuation from the corner is
  // m* = log(b (p - v) / h) / b instead.
  const double b = params_.decay;
  if (b == 0.0) return 0.0;
  if (optimal_direct_n() > 0.0) {
    const double ratio = viability_ratio();
    if (ratio <= 1.0) return 0.0;
    return std::log(ratio) / b;
  }
  const double argument =
      b * (params_.transit_price - params_.remote_unit) / params_.remote_fixed;
  if (argument <= 1.0) return 0.0;
  return std::log(argument) / b;
}

double CostModel::viability_ratio() const {
  return params_.direct_fixed * (params_.transit_price - params_.remote_unit) /
         (params_.remote_fixed *
          (params_.transit_price - params_.direct_unit));
}

bool CostModel::remote_viable() const {
  // b = 0 means peering (direct or remote) offloads nothing; the eq. 14
  // comparison presumes an interior eq. 11 solution, so fall back to the
  // equivalent statement m̃ >= 1 which also covers the ñ = 0 corner.
  if (params_.decay == 0.0) return false;
  if (optimal_direct_n() > 0.0)
    return viability_ratio() >= std::exp(params_.decay);
  return optimal_remote_m() >= 1.0;
}

double CostModel::critical_decay() const {
  const double ratio = viability_ratio();
  return ratio <= 0.0 ? 0.0 : std::log(ratio);
}

double CostModel::numeric_optimal_m_given_n(double n, double max_m) const {
  constexpr double kPhi = 0.6180339887498949;
  double lo = 0.0, hi = max_m;
  for (int iteration = 0; iteration < 100; ++iteration) {
    const double x1 = hi - kPhi * (hi - lo);
    const double x2 = lo + kPhi * (hi - lo);
    if (total_cost(n, x1) < total_cost(n, x2)) hi = x2; else lo = x1;
  }
  return (lo + hi) / 2.0;
}

Optimum CostModel::numeric_optimum(double max_n, double max_m,
                                   double step) const {
  if (step <= 0.0)
    throw std::invalid_argument("numeric_optimum: step must be positive");
  Optimum best{0.0, 0.0, total_cost(0.0, 0.0)};
  for (double n = 0.0; n <= max_n; n += step) {
    for (double m = 0.0; m <= max_m; m += step) {
      const double cost = total_cost(n, m);
      if (cost < best.cost) best = {n, m, cost};
    }
  }
  // Golden-section refinement along each axis around the best grid cell.
  auto refine = [this](double& n, double& m, bool along_n, double radius) {
    constexpr double kPhi = 0.6180339887498949;
    double lo = std::max(0.0, (along_n ? n : m) - radius);
    double hi = (along_n ? n : m) + radius;
    for (int iteration = 0; iteration < 60; ++iteration) {
      const double x1 = hi - kPhi * (hi - lo);
      const double x2 = lo + kPhi * (hi - lo);
      const double f1 = along_n ? total_cost(x1, m) : total_cost(n, x1);
      const double f2 = along_n ? total_cost(x2, m) : total_cost(n, x2);
      if (f1 < f2) hi = x2; else lo = x1;
    }
    (along_n ? n : m) = (lo + hi) / 2.0;
  };
  double n = best.n, m = best.m;
  for (int pass = 0; pass < 3; ++pass) {
    refine(n, m, /*along_n=*/true, step * 2.0);
    refine(n, m, /*along_n=*/false, step * 2.0);
  }
  const double refined = total_cost(n, m);
  if (refined < best.cost) best = {n, m, refined};
  return best;
}

double fit_decay_parameter(const std::vector<double>& remaining_fractions) {
  if (remaining_fractions.size() < 2)
    throw std::invalid_argument("fit_decay_parameter: need >= 2 points");
  std::vector<double> x, y;
  for (std::size_t k = 0; k < remaining_fractions.size(); ++k) {
    if (remaining_fractions[k] <= 0.0) break;  // Fully offloaded; log blows up.
    x.push_back(static_cast<double>(k));
    y.push_back(remaining_fractions[k]);
  }
  if (x.size() < 2)
    throw std::invalid_argument("fit_decay_parameter: degenerate curve");
  return util::fit_exponential_decay(x, y).decay;
}

}  // namespace rp::econ

// Valley-free (Gao-Rexford) route computation over the AS graph.
//
// Routing policy follows the canonical economic model:
//   * Preference: customer-learned > peer-learned > provider-learned routes,
//     then shorter AS path, then lower next-hop ASN (deterministic tiebreak).
//   * Export: customer routes are announced to everyone; peer- and
//     provider-learned routes are announced only to customers.
// The export rule is what confines peering traffic to the peers and their
// customer cones (§2.2) — the exact property the offload analysis relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/route.hpp"
#include "topology/as_graph.hpp"

namespace rp::bgp {

/// Best routes of every AS toward one destination AS, indexed by the
/// AsGraph's node index.
class DestinationRoutes {
 public:
  DestinationRoutes(const topology::AsGraph& graph, net::Asn destination,
                    std::vector<RouteSource> source, std::vector<unsigned> hops,
                    std::vector<std::int32_t> next_hop,
                    std::vector<bool> reachable);

  net::Asn destination() const { return destination_; }

  bool reachable_from(net::Asn asn) const;
  RouteSource source_at(net::Asn asn) const;
  unsigned path_length_from(net::Asn asn) const;

  /// The full route from `asn`; nullopt if the destination is unreachable
  /// under valley-free policy.
  std::optional<Route> route_from(net::Asn asn) const;

 private:
  const topology::AsGraph* graph_;
  net::Asn destination_;
  std::vector<RouteSource> source_;
  std::vector<unsigned> hops_;
  std::vector<std::int32_t> next_hop_;  ///< node index; -1 for none/self.
  std::vector<bool> reachable_;
};

/// Computes valley-free routes on a fixed graph. The graph must outlive the
/// computer and must not gain ASes or links while the computer is in use
/// (adjacency is indexed once at construction so that the per-destination
/// pass is free of hash lookups).
class RouteComputer {
 public:
  explicit RouteComputer(const topology::AsGraph& graph);

  /// Best route of every AS toward `destination`. O(V + E).
  DestinationRoutes routes_to(net::Asn destination) const;

  /// Convenience: the single route from `source` toward `destination`.
  std::optional<Route> route(net::Asn source, net::Asn destination) const;

 private:
  const topology::AsGraph* graph_;
  /// Adjacency by node index, in the graph's node order.
  std::vector<std::vector<std::uint32_t>> providers_;
  std::vector<std::vector<std::uint32_t>> customers_;
  std::vector<std::vector<std::uint32_t>> peers_;
  std::vector<std::uint32_t> asn_values_;  ///< ASN value per node index.
};

}  // namespace rp::bgp

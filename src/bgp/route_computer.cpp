#include "bgp/route_computer.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace rp::bgp {

std::string to_string(RouteSource s) {
  switch (s) {
    case RouteSource::kOrigin: return "origin";
    case RouteSource::kCustomer: return "customer";
    case RouteSource::kPeer: return "peer";
    case RouteSource::kProvider: return "provider";
  }
  return "unknown";
}

DestinationRoutes::DestinationRoutes(const topology::AsGraph& graph,
                                     net::Asn destination,
                                     std::vector<RouteSource> source,
                                     std::vector<unsigned> hops,
                                     std::vector<std::int32_t> next_hop,
                                     std::vector<bool> reachable)
    : graph_(&graph),
      destination_(destination),
      source_(std::move(source)),
      hops_(std::move(hops)),
      next_hop_(std::move(next_hop)),
      reachable_(std::move(reachable)) {}

bool DestinationRoutes::reachable_from(net::Asn asn) const {
  return reachable_[graph_->index_of(asn)];
}

RouteSource DestinationRoutes::source_at(net::Asn asn) const {
  const std::size_t i = graph_->index_of(asn);
  if (!reachable_[i])
    throw std::out_of_range("DestinationRoutes: unreachable from " +
                            asn.to_string());
  return source_[i];
}

unsigned DestinationRoutes::path_length_from(net::Asn asn) const {
  const std::size_t i = graph_->index_of(asn);
  if (!reachable_[i])
    throw std::out_of_range("DestinationRoutes: unreachable from " +
                            asn.to_string());
  return hops_[i];
}

std::optional<Route> DestinationRoutes::route_from(net::Asn asn) const {
  std::size_t i = graph_->index_of(asn);
  if (!reachable_[i]) return std::nullopt;
  Route route;
  route.destination = destination_;
  route.source = source_[i];
  while (next_hop_[i] >= 0) {
    i = static_cast<std::size_t>(next_hop_[i]);
    route.as_path.push_back(graph_->nodes()[i].asn);
  }
  return route;
}

RouteComputer::RouteComputer(const topology::AsGraph& graph)
    : graph_(&graph) {
  const std::size_t n = graph.as_count();
  providers_.resize(n);
  customers_.resize(n);
  peers_.resize(n);
  asn_values_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const net::Asn asn = graph.nodes()[i].asn;
    asn_values_[i] = asn.value();
    for (net::Asn p : graph.providers_of(asn))
      providers_[i].push_back(static_cast<std::uint32_t>(graph.index_of(p)));
    for (net::Asn c : graph.customers_of(asn))
      customers_[i].push_back(static_cast<std::uint32_t>(graph.index_of(c)));
    for (net::Asn p : graph.peers_of(asn))
      peers_[i].push_back(static_cast<std::uint32_t>(graph.index_of(p)));
  }
}

DestinationRoutes RouteComputer::routes_to(net::Asn destination) const {
  const auto& graph = *graph_;
  const std::size_t n = graph.as_count();
  constexpr unsigned kUnset = std::numeric_limits<unsigned>::max();

  std::vector<RouteSource> source(n, RouteSource::kProvider);
  std::vector<unsigned> hops(n, kUnset);
  std::vector<std::int32_t> next(n, -1);
  std::vector<bool> reachable(n, false);

  const std::size_t dest_index = graph.index_of(destination);
  source[dest_index] = RouteSource::kOrigin;
  hops[dest_index] = 0;
  reachable[dest_index] = true;

  // Phase 1 — customer routes ripple *up* the provider hierarchy: an AS that
  // reaches the destination through a customer announces it to everyone,
  // including its own providers. Level-synchronous BFS; ties between equal-
  // level parents break toward the lower parent ASN.
  std::vector<std::size_t> level{dest_index};
  while (!level.empty()) {
    std::vector<std::pair<std::size_t, std::size_t>> candidates;  // (p, x)
    for (std::size_t x : level) {
      for (std::uint32_t p : providers_[x]) {
        if (reachable[p]) continue;  // Already has a customer route (or is d).
        candidates.emplace_back(p, x);
      }
    }
    std::vector<std::size_t> next_level;
    for (const auto& [p, x] : candidates) {
      if (!reachable[p]) {
        reachable[p] = true;
        source[p] = RouteSource::kCustomer;
        hops[p] = hops[x] + 1;
        next[p] = static_cast<std::int32_t>(x);
        next_level.push_back(p);
      } else if (source[p] == RouteSource::kCustomer &&
                 hops[p] == hops[x] + 1 &&
                 asn_values_[x] <
                     asn_values_[static_cast<std::size_t>(next[p])]) {
        next[p] = static_cast<std::int32_t>(x);  // Same level, lower ASN.
      }
    }
    level = std::move(next_level);
  }

  // Phase 2 — peer routes: one settlement-free edge at the top of the path.
  // Only customer routes (or origination) may be announced across a peering
  // edge, so eligibility is exactly "peer has a customer route".
  for (std::size_t x = 0; x < n; ++x) {
    if (reachable[x]) continue;
    std::int32_t best_peer = -1;
    unsigned best_hops = kUnset;
    for (std::uint32_t y : peers_[x]) {
      if (!reachable[y]) continue;
      if (source[y] != RouteSource::kOrigin &&
          source[y] != RouteSource::kCustomer)
        continue;
      const unsigned candidate_hops = hops[y] + 1;
      if (candidate_hops < best_hops ||
          (candidate_hops == best_hops && best_peer >= 0 &&
           asn_values_[y] <
               asn_values_[static_cast<std::size_t>(best_peer)])) {
        best_hops = candidate_hops;
        best_peer = static_cast<std::int32_t>(y);
      }
    }
    if (best_peer >= 0) {
      reachable[x] = true;
      source[x] = RouteSource::kPeer;
      hops[x] = best_hops;
      next[x] = best_peer;
    }
  }

  // Phase 3 — provider routes ripple *down* customer edges: any AS with a
  // route announces it to its customers. Multi-source Dijkstra (edge weight
  // 1, heterogeneous source depths), tie-break toward the lower parent ASN.
  // Entries order by (hops, parent ASN) so equal-cost pops resolve toward
  // the lower parent ASN; the parent index rides along for reconstruction.
  using Entry = std::tuple<unsigned, std::uint32_t, std::uint32_t,
                           std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (std::size_t x = 0; x < n; ++x) {
    if (!reachable[x]) continue;
    for (std::uint32_t c : customers_[x]) {
      if (!reachable[c])
        queue.emplace(hops[x] + 1, asn_values_[x],
                      static_cast<std::uint32_t>(x), c);
    }
  }
  while (!queue.empty()) {
    const auto [candidate_hops, parent_value, parent_index, x] = queue.top();
    queue.pop();
    if (reachable[x]) continue;  // Stale entry.
    reachable[x] = true;
    source[x] = RouteSource::kProvider;
    hops[x] = candidate_hops;
    next[x] = static_cast<std::int32_t>(parent_index);
    for (std::uint32_t c : customers_[x]) {
      if (!reachable[c])
        queue.emplace(candidate_hops + 1, asn_values_[x],
                      static_cast<std::uint32_t>(x), c);
    }
  }

  return DestinationRoutes(graph, destination, std::move(source),
                           std::move(hops), std::move(next),
                           std::move(reachable));
}

std::optional<Route> RouteComputer::route(net::Asn source,
                                          net::Asn destination) const {
  return routes_to(destination).route_from(source);
}

}  // namespace rp::bgp

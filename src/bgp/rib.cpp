#include "bgp/rib.hpp"

#include <optional>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::bgp {

Rib Rib::build(const topology::AsGraph& graph, net::Asn vantage) {
  obs::Span span("bgp.rib.build");
  static obs::Counter builds("rp.bgp.rib.builds");
  builds.add();
  Rib rib;
  rib.vantage_ = vantage;
  const RouteComputer computer(graph);
  const auto& nodes = graph.nodes();

  // Destination route builds are independent; fan them out and do the
  // (order-sensitive) trie/map inserts serially in node order afterwards so
  // the resulting RIB is identical at any thread count.
  const std::vector<std::optional<Route>> routes =
      util::ThreadPool::global().parallel_transform(
          nodes.size(), [&computer, &nodes, vantage](std::size_t i) {
            return computer.routes_to(nodes[i].asn).route_from(vantage);
          });

  std::uint64_t inserted = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!routes[i]) continue;
    for (const auto& prefix : nodes[i].prefixes) {
      rib.trie_.insert(prefix, RibEntry{nodes[i].asn, *routes[i]});
      ++inserted;
    }
    rib.by_destination_.emplace(nodes[i].asn, *routes[i]);
  }
  static obs::Counter computed("rp.bgp.routes.computed");
  static obs::Counter prefixes("rp.bgp.prefixes.inserted");
  computed.add(nodes.size());
  prefixes.add(inserted);
  return rib;
}

Rib Rib::restore(const topology::AsGraph& graph, net::Asn vantage,
                 std::span<const std::pair<net::Asn, Route>> routes) {
  Rib rib;
  rib.vantage_ = vantage;
  for (const auto& [destination, route] : routes) {
    const topology::AsNode& node = graph.node(destination);  // Throws unknown.
    if (rib.by_destination_.contains(destination))
      throw std::invalid_argument("Rib::restore: duplicate destination " +
                                  destination.to_string());
    for (const auto& prefix : node.prefixes)
      rib.trie_.insert(prefix, RibEntry{destination, route});
    rib.by_destination_.emplace(destination, route);
  }
  return rib;
}

std::optional<net::Asn> Rib::lookup_origin(net::Ipv4Addr addr) const {
  const RibEntry* entry = trie_.lookup(addr);
  if (entry == nullptr) return std::nullopt;
  return entry->origin;
}

const Route* Rib::route_to(net::Asn destination) const {
  const auto it = by_destination_.find(destination);
  return it == by_destination_.end() ? nullptr : &it->second;
}

}  // namespace rp::bgp

#include "bgp/rib.hpp"

namespace rp::bgp {

Rib Rib::build(const topology::AsGraph& graph, net::Asn vantage) {
  Rib rib;
  rib.vantage_ = vantage;
  const RouteComputer computer(graph);
  for (const auto& node : graph.nodes()) {
    const auto routes = computer.routes_to(node.asn);
    const auto route = routes.route_from(vantage);
    if (!route) continue;
    for (const auto& prefix : node.prefixes)
      rib.trie_.insert(prefix, RibEntry{node.asn, *route});
    rib.by_destination_.emplace(node.asn, *route);
  }
  return rib;
}

std::optional<net::Asn> Rib::lookup_origin(net::Ipv4Addr addr) const {
  const RibEntry* entry = trie_.lookup(addr);
  if (entry == nullptr) return std::nullopt;
  return entry->origin;
}

const Route* Rib::route_to(net::Asn destination) const {
  const auto it = by_destination_.find(destination);
  return it == by_destination_.end() ? nullptr : &it->second;
}

}  // namespace rp::bgp

// BGP route objects.
//
// The offload study (§4.1) joins NetFlow with the BGP tables of the vantage
// network's border routers to get an AS-level path for every flow. These are
// the route types that computation produces and the RIB stores.
#pragma once

#include <string>
#include <vector>

#include "net/ip.hpp"

namespace rp::bgp {

/// How a route was learned, in decreasing order of (Gao-Rexford) preference.
enum class RouteSource {
  kOrigin,    ///< The AS originates the destination itself.
  kCustomer,  ///< Learned from a transit customer (earns revenue).
  kPeer,      ///< Learned from a settlement-free peer (cost-neutral).
  kProvider,  ///< Learned from a transit provider (costs money).
};

std::string to_string(RouteSource s);

/// A resolved route from some AS toward a destination AS.
struct Route {
  net::Asn destination;
  RouteSource source = RouteSource::kProvider;
  /// AS path *excluding* the owning AS: first element is the next-hop AS,
  /// last element is the destination. Empty iff source == kOrigin.
  std::vector<net::Asn> as_path;

  unsigned path_length() const {
    return static_cast<unsigned>(as_path.size());
  }
  net::Asn next_hop() const {
    return as_path.empty() ? destination : as_path.front();
  }
};

}  // namespace rp::bgp

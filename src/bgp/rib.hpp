// A per-vantage routing information base (RIB).
//
// Mirrors the BGP tables of the vantage network's border routers that the
// paper joins with NetFlow (§4.1): every destination prefix maps to the
// valley-free route the vantage selects, so a flow's remote endpoint address
// resolves (longest-prefix match) to an origin AS and an AS-level path.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "bgp/route.hpp"
#include "bgp/route_computer.hpp"
#include "net/prefix_trie.hpp"

namespace rp::bgp {

/// One RIB entry: the origin AS of the prefix and the selected route.
struct RibEntry {
  net::Asn origin;
  Route route;
};

/// The vantage AS's full table over every prefix originated in the graph.
class Rib {
 public:
  /// Computes the vantage's best route to every AS in `graph` and indexes it
  /// by originated prefix. Unreachable destinations are omitted.
  static Rib build(const topology::AsGraph& graph, net::Asn vantage);

  /// Rebuilds a RIB from precomputed routes (rp::io snapshot load): inserts
  /// each destination's prefixes exactly as build() would, skipping the route
  /// computation. Routes must be listed in graph node order for the result
  /// to be identical to build()'s. Throws std::invalid_argument if a
  /// destination is unknown to the graph or listed twice.
  static Rib restore(const topology::AsGraph& graph, net::Asn vantage,
                     std::span<const std::pair<net::Asn, Route>> routes);

  net::Asn vantage() const { return vantage_; }

  /// Longest-prefix-match lookup of an address; nullptr if no route covers it.
  const RibEntry* lookup(net::Ipv4Addr addr) const {
    return trie_.lookup(addr);
  }
  /// The origin AS owning `addr`, if routed.
  std::optional<net::Asn> lookup_origin(net::Ipv4Addr addr) const;

  /// The selected route toward an AS; nullptr if unreachable.
  const Route* route_to(net::Asn destination) const;

  /// Number of routed prefixes.
  std::size_t prefix_count() const { return trie_.size(); }
  /// Number of reachable destination ASes.
  std::size_t destination_count() const { return by_destination_.size(); }

 private:
  net::Asn vantage_;
  net::PrefixTrie<RibEntry> trie_;
  std::unordered_map<net::Asn, Route> by_destination_;
};

}  // namespace rp::bgp

#include "offload/peer_groups.hpp"

namespace rp::offload {

std::string to_string(PeerGroup g) {
  switch (g) {
    case PeerGroup::kOpen: return "all open policies";
    case PeerGroup::kOpenTop10Selective:
      return "all open and top 10 selective policies";
    case PeerGroup::kOpenSelective: return "all open and selective policies";
    case PeerGroup::kAll: return "all policies";
  }
  return "unknown";
}

bool policy_in_group(topology::PeeringPolicy policy, PeerGroup group) {
  using topology::PeeringPolicy;
  switch (group) {
    case PeerGroup::kOpen:
    case PeerGroup::kOpenTop10Selective:
      // Group 2's selective members are added by the analyzer.
      return policy == PeeringPolicy::kOpen;
    case PeerGroup::kOpenSelective:
      return policy == PeeringPolicy::kOpen ||
             policy == PeeringPolicy::kSelective;
    case PeerGroup::kAll:
      return true;
  }
  return false;
}

}  // namespace rp::offload

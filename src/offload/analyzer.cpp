#include "offload/analyzer.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::offload {

OffloadAnalyzer::OffloadAnalyzer(const topology::AsGraph& graph,
                                 const ixp::IxpEcosystem& ecosystem,
                                 net::Asn vantage,
                                 const flow::TrafficMatrix& matrix,
                                 const bgp::Rib& rib, AnalyzerConfig config)
    : graph_(&graph),
      ecosystem_(&ecosystem),
      vantage_(vantage),
      rib_(&rib),
      config_(std::move(config)) {
  obs::Span span("offload.analyzer.construct");
  // --- Transit endpoints: remote networks routed via a transit provider ---
  for (const auto& contribution : matrix.ranked()) {
    const bgp::Route* route = rib_->route_to(contribution.asn);
    if (route == nullptr || route->source != bgp::RouteSource::kProvider)
      continue;
    endpoint_index_.emplace(contribution.asn, endpoints_.size());
    endpoints_.push_back(contribution);
    transit_in_ += contribution.inbound_bps;
    transit_out_ += contribution.outbound_bps;
    transit_addresses_ +=
        static_cast<double>(graph.node(contribution.asn).address_count());
  }

  // --- Exclusion rules (§4.2) ---
  std::unordered_set<net::Asn> excluded;
  excluded.insert(vantage_);
  // Rule 1: the vantage's transit providers do not peer with their customer.
  for (net::Asn provider : graph.providers_of(vantage_))
    excluded.insert(provider);
  // Rule 2: co-members of the IXPs where the vantage already peers offer
  // nothing new through remote peering.
  for (const auto& acronym : config_.vantage_member_ixps) {
    const ixp::Ixp* home = ecosystem.find(acronym);
    if (home == nullptr) continue;
    for (net::Asn member : home->member_asns()) excluded.insert(member);
  }
  // Rule 3: fellow research networks are already reachable through the
  // NREN backbone (the GEANT rule).
  if (config_.exclude_nren_fellows &&
      graph.node(vantage_).cls == topology::AsClass::kNren) {
    for (const auto& node : graph.nodes())
      if (node.cls == topology::AsClass::kNren) excluded.insert(node.asn);
  }

  // Candidate peers: distinct members of the reachable IXPs, minus excluded.
  std::unordered_set<net::Asn> seen;
  for (const auto& ixp : ecosystem.ixps()) {
    for (net::Asn member : ixp.member_asns()) {
      if (excluded.contains(member)) continue;
      if (!graph.contains(member)) continue;
      if (seen.insert(member).second) eligible_.push_back(member);
    }
  }
  std::sort(eligible_.begin(), eligible_.end());

  // --- Cone coverage masks for eligible peers ---
  // Translate each peer's (memoized, index-space) customer cone into
  // endpoint space. The node -> endpoint map makes the translation a single
  // sweep over the cone's set bits; the peers are independent, so fan out.
  std::vector<std::int32_t> endpoint_of_node(graph.as_count(), -1);
  for (std::size_t e = 0; e < endpoints_.size(); ++e)
    endpoint_of_node[graph.index_of(endpoints_[e].asn)] =
        static_cast<std::int32_t>(e);
  if (graph.as_count() > 0) graph.cone_mask(0);  // Build the memo once.
  cone_masks_ = util::ThreadPool::global().parallel_transform(
      eligible_.size(), [this, &graph, &endpoint_of_node](std::size_t k) {
        util::DynamicBitset mask(endpoints_.size());
        graph.cone_mask(graph.index_of(eligible_[k]))
            .for_each([&mask, &endpoint_of_node](std::size_t j) {
              const std::int32_t e = endpoint_of_node[j];
              if (e >= 0) mask.set(static_cast<std::size_t>(e));
            });
        return mask;
      });
  for (std::size_t k = 0; k < eligible_.size(); ++k)
    cone_index_.emplace(eligible_[k], k);

  // --- Group 2's top-10 selective networks by offload potential ---
  std::vector<net::Asn> selective;
  for (net::Asn peer : eligible_)
    if (graph.node(peer).policy == topology::PeeringPolicy::kSelective)
      selective.push_back(peer);
  std::sort(selective.begin(), selective.end(),
            [this](net::Asn a, net::Asn b) {
              return peer_potential(a) > peer_potential(b);
            });
  if (selective.size() > 10) selective.resize(10);
  top10_selective_ = std::move(selective);

  if (obs::metrics_enabled()) {
    static obs::Counter analyzers("rp.offload.analyzers");
    static obs::Counter transit("rp.offload.endpoints.transit");
    static obs::Counter peers("rp.offload.peers.eligible");
    analyzers.add();
    transit.add(endpoints_.size());
    peers.add(eligible_.size());
  }
}

double OffloadAnalyzer::peer_potential(net::Asn peer) const {
  const util::DynamicBitset* mask = peer_cone_mask(peer);
  if (mask == nullptr) return 0.0;
  double total = 0.0;
  mask->for_each([this, &total](std::size_t i) {
    total += endpoints_[i].total_bps();
  });
  return total;
}

const util::DynamicBitset* OffloadAnalyzer::peer_cone_mask(
    net::Asn peer) const {
  const auto it = cone_index_.find(peer);
  return it == cone_index_.end() ? nullptr : &cone_masks_[it->second];
}

bool OffloadAnalyzer::peer_in_group_resolved(net::Asn peer,
                                             PeerGroup group) const {
  const auto policy = graph_->node(peer).policy;
  if (policy_in_group(policy, group)) return true;
  if (group == PeerGroup::kOpenTop10Selective &&
      policy == topology::PeeringPolicy::kSelective) {
    return std::find(top10_selective_.begin(), top10_selective_.end(), peer) !=
           top10_selective_.end();
  }
  return false;
}

std::vector<net::Asn> OffloadAnalyzer::eligible_peers() const {
  return eligible_;
}

std::vector<net::Asn> OffloadAnalyzer::peers_in_group(PeerGroup group) const {
  std::vector<net::Asn> out;
  for (net::Asn peer : eligible_)
    if (peer_in_group_resolved(peer, group)) out.push_back(peer);
  return out;
}

const std::vector<util::DynamicBitset>& OffloadAnalyzer::coverage_for(
    PeerGroup group) const {
  const auto slot = static_cast<std::size_t>(group);
  std::scoped_lock lock(coverage_mutex_);
  if (coverage_built_[slot]) {
    static obs::Counter reuses("rp.offload.coverage.reuses");
    reuses.add();
    return coverage_cache_[slot];
  }
  {
    obs::Span span("offload.coverage.build");
    // IxpId is the index into ecosystem().ixps(), so the cache vector is
    // directly addressable by id. Masks are independent per IXP; fan out.
    const auto ixps = ecosystem_->ixps();
    coverage_cache_[slot] = util::ThreadPool::global().parallel_transform(
        ixps.size(), [this, &ixps, group](std::size_t x) {
          util::DynamicBitset mask(endpoints_.size());
          for (net::Asn member : ixps[x].member_asns()) {
            const util::DynamicBitset* cone = peer_cone_mask(member);
            if (cone == nullptr) continue;  // Excluded or unknown network.
            if (!peer_in_group_resolved(member, group)) continue;
            mask |= *cone;
          }
          return mask;
        });
    coverage_built_[slot] = true;
    static obs::Counter built("rp.offload.coverage.masks_built");
    built.add(coverage_cache_[slot].size());
  }
  return coverage_cache_[slot];
}

const util::DynamicBitset& OffloadAnalyzer::ixp_coverage(
    ixp::IxpId ixp, PeerGroup group) const {
  return coverage_for(group)[ixp];
}

std::vector<net::Asn> OffloadAnalyzer::covered_endpoints(
    std::span<const ixp::IxpId> ixps, PeerGroup group) const {
  util::DynamicBitset mask(endpoints_.size());
  for (ixp::IxpId id : ixps) mask |= ixp_coverage(id, group);
  std::vector<net::Asn> out;
  mask.for_each([this, &out](std::size_t i) {
    out.push_back(endpoints_[i].asn);
  });
  return out;
}

Potential OffloadAnalyzer::potential_at(std::span<const ixp::IxpId> ixps,
                                        PeerGroup group) const {
  util::DynamicBitset mask(endpoints_.size());
  for (ixp::IxpId id : ixps) mask |= ixp_coverage(id, group);
  Potential p;
  mask.for_each([this, &p](std::size_t i) {
    p.inbound_bps += endpoints_[i].inbound_bps;
    p.outbound_bps += endpoints_[i].outbound_bps;
    ++p.covered_networks;
  });
  return p;
}

Potential OffloadAnalyzer::remaining_potential_at(
    ixp::IxpId target, std::span<const ixp::IxpId> already_reached,
    PeerGroup group) const {
  util::DynamicBitset mask = ixp_coverage(target, group);  // Copy of cache.
  for (ixp::IxpId id : already_reached)
    mask.subtract(ixp_coverage(id, group));
  Potential p;
  mask.for_each([this, &p](std::size_t i) {
    p.inbound_bps += endpoints_[i].inbound_bps;
    p.outbound_bps += endpoints_[i].outbound_bps;
    ++p.covered_networks;
  });
  return p;
}

std::vector<ixp::IxpId> OffloadAnalyzer::all_ixps() const {
  std::vector<ixp::IxpId> out;
  for (const auto& ixp : ecosystem_->ixps()) out.push_back(ixp.id());
  return out;
}

std::vector<GreedyStep> OffloadAnalyzer::greedy(
    PeerGroup group, std::size_t max_steps, const std::vector<double>& weights,
    bool traffic_mode) const {
  // The cached coverage masks make every step a pure scan: intersect each
  // unused IXP's mask with the remaining set and weigh the overlap.
  obs::Span span("offload.greedy");
  static obs::Counter runs("rp.offload.greedy.runs");
  static obs::Counter step_count("rp.offload.greedy.steps");
  static obs::Counter scans("rp.offload.greedy.scans");
  runs.add();
  const std::vector<util::DynamicBitset>& coverage = coverage_for(group);

  util::DynamicBitset remaining(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i) remaining.set(i);

  double remaining_in = transit_in_;
  double remaining_out = transit_out_;
  double remaining_weight = 0.0;
  for (std::size_t i = 0; i < endpoints_.size(); ++i)
    remaining_weight += weights[i];

  std::vector<bool> used(coverage.size(), false);
  std::vector<GreedyStep> steps;
  std::vector<double> gains(coverage.size());
  util::ThreadPool& pool = util::ThreadPool::global();

  for (std::size_t step = 0; step < max_steps; ++step) {
    // Per-IXP gains are independent; compute them across the pool, then do
    // the argmax serially so ties keep breaking toward the lower IXP index
    // exactly as the sequential scan did.
    pool.parallel_for(coverage.size(), [&](std::size_t x) {
      if (used[x]) {
        gains[x] = 0.0;
        return;
      }
      double gain = 0.0;
      coverage[x].for_each_intersection(
          remaining, [&gain, &weights](std::size_t i) { gain += weights[i]; });
      gains[x] = gain;
    });
    // Per-step granularity only: counting inside the bitset scans would put
    // a branch in the innermost loop and violate the disabled-overhead
    // budget.
    scans.add(coverage.size());
    double best_gain = 0.0;
    std::size_t best_ixp = coverage.size();
    for (std::size_t x = 0; x < coverage.size(); ++x) {
      if (used[x]) continue;
      if (gains[x] > best_gain) {
        best_gain = gains[x];
        best_ixp = x;
      }
    }
    if (best_ixp == coverage.size() || best_gain <= 0.0) break;

    GreedyStep result;
    result.ixp_id = ecosystem_->ixps()[best_ixp].id();
    result.acronym = ecosystem_->ixps()[best_ixp].acronym();
    result.gained = best_gain;

    coverage[best_ixp].for_each_intersection(
        remaining, [this, &remaining_in, &remaining_out](std::size_t i) {
          remaining_in -= endpoints_[i].inbound_bps;
          remaining_out -= endpoints_[i].outbound_bps;
        });
    remaining.subtract(coverage[best_ixp]);
    remaining_weight -= best_gain;
    used[best_ixp] = true;

    result.remaining = remaining_weight;
    if (traffic_mode) {
      result.remaining_inbound_bps = remaining_in;
      result.remaining_outbound_bps = remaining_out;
    }
    steps.push_back(std::move(result));
  }
  step_count.add(steps.size());
  return steps;
}

std::vector<GreedyStep> OffloadAnalyzer::greedy_by_traffic(
    PeerGroup group, std::size_t max_steps) const {
  std::vector<double> weights(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i)
    weights[i] = endpoints_[i].total_bps();
  return greedy(group, max_steps, weights, /*traffic_mode=*/true);
}

std::vector<GreedyStep> OffloadAnalyzer::greedy_by_addresses(
    PeerGroup group, std::size_t max_steps) const {
  std::vector<double> weights(endpoints_.size());
  for (std::size_t i = 0; i < endpoints_.size(); ++i)
    weights[i] = static_cast<double>(
        graph_->node(endpoints_[i].asn).address_count());
  return greedy(group, max_steps, weights, /*traffic_mode=*/false);
}

std::vector<ContributorRow> OffloadAnalyzer::top_contributors(
    std::size_t count, PeerGroup group) const {
  const std::vector<ixp::IxpId> everywhere = all_ixps();
  util::DynamicBitset covered(endpoints_.size());
  for (ixp::IxpId id : everywhere) covered |= ixp_coverage(id, group);

  // Networks the vantage buys transit from are the entities being bypassed;
  // they are not contributors to the offload potential.
  std::unordered_set<net::Asn> skip;
  skip.insert(vantage_);
  for (net::Asn provider : graph_->providers_of(vantage_))
    skip.insert(provider);

  std::unordered_map<net::Asn, ContributorRow> rows;
  covered.for_each([this, &rows, &skip](std::size_t i) {
    const auto& endpoint = endpoints_[i];
    // Endpoint contribution: the network originates the inbound traffic and
    // terminates the outbound traffic the vantage exchanges with it.
    auto& row = rows[endpoint.asn];
    row.asn = endpoint.asn;
    row.endpoint_inbound_bps += endpoint.inbound_bps;
    row.endpoint_outbound_bps += endpoint.outbound_bps;
    // Transient contributions: every AS on the vantage's path to the
    // endpoint (except the endpoint itself) carries the traffic through.
    const bgp::Route* route = rib_->route_to(endpoint.asn);
    if (route == nullptr) return;
    for (std::size_t hop = 0; hop + 1 < route->as_path.size(); ++hop) {
      const net::Asn via = route->as_path[hop];
      if (skip.contains(via)) continue;
      auto& transit_row = rows[via];
      transit_row.asn = via;
      transit_row.transient_inbound_bps += endpoint.inbound_bps;
      transit_row.transient_outbound_bps += endpoint.outbound_bps;
    }
  });

  std::vector<ContributorRow> ranked;
  ranked.reserve(rows.size());
  for (auto& [asn, row] : rows) {
    row.name = graph_->node(asn).name;
    ranked.push_back(std::move(row));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ContributorRow& a, const ContributorRow& b) {
              return a.total_bps() > b.total_bps();
            });
  if (ranked.size() > count) ranked.resize(count);
  return ranked;
}

}  // namespace rp::offload

// The traffic-offload analysis of §4: how much transit-provider traffic the
// vantage network could shift to (remote) peering.
//
// Pipeline: identify the transit endpoints (remote networks whose selected
// route goes through a transit provider), apply the §4.2 exclusion rules to
// the members of the reachable IXPs, build peer groups, and compute coverage:
// a transit endpoint is offloadable at an IXP set if some eligible member of
// some reached IXP carries it in its customer cone (peering traffic is
// limited to the peers and their cones, §2.2). Greedy expansion over IXPs
// yields the Fig. 9 remaining-transit curve; an address-weighted variant
// yields Fig. 10's vantage-independent generalization.
#pragma once

#include <array>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/rib.hpp"
#include "flow/traffic_matrix.hpp"
#include "ixp/ixp.hpp"
#include "offload/peer_groups.hpp"
#include "util/bitset.hpp"

namespace rp::offload {

/// Exclusion-rule configuration (§4.2).
struct AnalyzerConfig {
  /// Acronyms of IXPs where the vantage already peers (its co-members there
  /// are excluded as remote-peering candidates). RedIRIS: CATNIX, ESpanix.
  std::vector<std::string> vantage_member_ixps;
  /// Exclude fellow research networks reachable through the NREN backbone
  /// (the GEANT rule).
  bool exclude_nren_fellows = true;
};

/// Offload potential of one configuration.
struct Potential {
  double inbound_bps = 0.0;
  double outbound_bps = 0.0;
  std::size_t covered_networks = 0;  ///< Offloadable endpoints (incl. cones).

  double total_bps() const { return inbound_bps + outbound_bps; }
};

/// One step of a greedy IXP expansion.
struct GreedyStep {
  ixp::IxpId ixp_id = 0;
  std::string acronym;
  /// Weight gained by adding this IXP (bps, or addresses for Fig. 10).
  double gained = 0.0;
  /// Remaining transit weight after this step.
  double remaining = 0.0;
  /// Remaining split by direction (traffic mode only).
  double remaining_inbound_bps = 0.0;
  double remaining_outbound_bps = 0.0;
};

/// Fig. 6 row: a network's contribution to the offload potential, split into
/// traffic it originates/terminates versus traffic transiting through it.
struct ContributorRow {
  net::Asn asn;
  std::string name;
  double endpoint_inbound_bps = 0.0;   ///< Origin traffic (inbound).
  double endpoint_outbound_bps = 0.0;  ///< Destination traffic (outbound).
  double transient_inbound_bps = 0.0;
  double transient_outbound_bps = 0.0;

  double total_bps() const {
    return endpoint_inbound_bps + endpoint_outbound_bps +
           transient_inbound_bps + transient_outbound_bps;
  }
};

class OffloadAnalyzer {
 public:
  OffloadAnalyzer(const topology::AsGraph& graph,
                  const ixp::IxpEcosystem& ecosystem, net::Asn vantage,
                  const flow::TrafficMatrix& matrix, const bgp::Rib& rib,
                  AnalyzerConfig config = {});

  net::Asn vantage() const { return vantage_; }

  /// Transit endpoints: networks whose traffic flows through the vantage's
  /// transit providers, with their rates. Decreasing by total rate.
  const std::vector<flow::NetworkContribution>& transit_endpoints() const {
    return endpoints_;
  }
  double transit_inbound_bps() const { return transit_in_; }
  double transit_outbound_bps() const { return transit_out_; }
  /// Total addresses originated by transit endpoints (Fig. 10 baseline).
  double transit_addresses() const { return transit_addresses_; }

  /// Candidate peers surviving the exclusion rules (the paper's 2,192).
  std::vector<net::Asn> eligible_peers() const;
  /// Peers of a group among the eligible candidates (resolves group 2's
  /// top-10 selective refinement by offload potential).
  std::vector<net::Asn> peers_in_group(PeerGroup group) const;

  /// Networks covered (offloadable) when reaching `ixps` under `group`.
  std::vector<net::Asn> covered_endpoints(std::span<const ixp::IxpId> ixps,
                                          PeerGroup group) const;
  /// Offload potential when reaching `ixps` under `group`.
  Potential potential_at(std::span<const ixp::IxpId> ixps,
                         PeerGroup group) const;
  /// Potential remaining at `target` after fully realizing the potential at
  /// `already_reached` (Fig. 8).
  Potential remaining_potential_at(ixp::IxpId target,
                                   std::span<const ixp::IxpId> already_reached,
                                   PeerGroup group) const;

  /// Greedy expansion by remaining traffic (Fig. 9). Stops after max_steps
  /// or when no IXP adds anything.
  std::vector<GreedyStep> greedy_by_traffic(PeerGroup group,
                                            std::size_t max_steps) const;
  /// Greedy expansion by remaining transit-only-reachable addresses
  /// (Fig. 10).
  std::vector<GreedyStep> greedy_by_addresses(PeerGroup group,
                                              std::size_t max_steps) const;

  /// Top contributors to the maximal offload potential (Fig. 6), splitting
  /// endpoint vs transient traffic along the vantage's AS paths.
  std::vector<ContributorRow> top_contributors(std::size_t count,
                                               PeerGroup group) const;

  /// All reachable IXP ids (the analysis universe).
  std::vector<ixp::IxpId> all_ixps() const;

  /// The per-IXP coverage masks of a group, indexed by IxpId: endpoint-space
  /// bitsets in transit_endpoints() order. Built lazily (shared with every
  /// other query); rp::stream's incremental layer folds them into live
  /// covered-set state instead of re-unioning per what-if.
  const std::vector<util::DynamicBitset>& coverage_masks(PeerGroup group) const {
    return coverage_for(group);
  }

 private:
  /// All coverage masks of a group, indexed by IxpId. Built lazily (in
  /// parallel across IXPs) on first use and cached for the analyzer's
  /// lifetime — every public query then reuses them instead of re-unioning
  /// member cones per call.
  const std::vector<util::DynamicBitset>& coverage_for(PeerGroup group) const;
  /// Coverage mask of one IXP under a group: endpoints offloadable there.
  const util::DynamicBitset& ixp_coverage(ixp::IxpId ixp,
                                          PeerGroup group) const;
  const util::DynamicBitset* peer_cone_mask(net::Asn peer) const;
  bool peer_in_group_resolved(net::Asn peer, PeerGroup group) const;
  std::vector<GreedyStep> greedy(PeerGroup group, std::size_t max_steps,
                                 const std::vector<double>& weights,
                                 bool traffic_mode) const;
  double peer_potential(net::Asn peer) const;

  const topology::AsGraph* graph_;
  const ixp::IxpEcosystem* ecosystem_;
  net::Asn vantage_;
  const bgp::Rib* rib_;
  AnalyzerConfig config_;

  std::vector<flow::NetworkContribution> endpoints_;
  std::unordered_map<net::Asn, std::size_t> endpoint_index_;
  double transit_in_ = 0.0;
  double transit_out_ = 0.0;
  double transit_addresses_ = 0.0;

  std::vector<net::Asn> eligible_;  ///< Candidate peers after exclusions.
  /// Endpoint-space cone mask per eligible peer, aligned with eligible_.
  std::vector<util::DynamicBitset> cone_masks_;
  std::unordered_map<net::Asn, std::size_t> cone_index_;
  std::vector<net::Asn> top10_selective_;

  /// Per-group coverage-mask cache, indexed by static_cast of PeerGroup.
  mutable std::mutex coverage_mutex_;
  mutable std::array<std::vector<util::DynamicBitset>, 5> coverage_cache_;
  mutable std::array<bool, 5> coverage_built_{};
};

}  // namespace rp::offload

// Peer groups (§4.2): who might actually peer with the vantage network.
//
// Even after exclusion rules, which members would agree to peer is uncertain,
// so the paper brackets the answer with four nested groups built from
// PeeringDB-style policies:
//   group 1  all open policies (lower bound — open networks typically peer
//            automatically via the IXP route server),
//   group 2  group 1 plus the 10 selective networks with the largest
//            offload potential,
//   group 3  all open and selective policies,
//   group 4  all policies (upper bound).
#pragma once

#include <string>

#include "topology/as_node.hpp"

namespace rp::offload {

enum class PeerGroup {
  kOpen = 1,
  kOpenTop10Selective = 2,
  kOpenSelective = 3,
  kAll = 4,
};

std::string to_string(PeerGroup g);

/// Whether a policy belongs to a group, ignoring the top-10 refinement
/// (group 2's selective top-10 is resolved by the analyzer, which knows the
/// potentials).
bool policy_in_group(topology::PeeringPolicy policy, PeerGroup group);

}  // namespace rp::offload

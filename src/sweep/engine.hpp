// rp::sweep engine: expand a SweepSpec, execute the runs across the thread
// pool, and collect a stable, schema-versioned results table.
//
// Layout of a sweep directory:
//
//   <dir>/manifest.txt        "rpsweep-manifest v1" + spec digest + run
//                             count + the canonical spec block (the manifest
//                             alone is enough to resume — no spec file
//                             needed)
//   <dir>/runs/run-<i>.rec    one completion record per finished run:
//                             header line (schema, spec digest, index),
//                             the run's CSV row, the run's JSON row
//   <dir>/results.csv         header + rows in run-index order
//   <dir>/results.json        the same rows as a JSON document
//
// Execution shards over *worlds*, not runs: runs that share every
// scenario-config field (differing only in econ.* axes) map to one world
// group, so the group builds its Scenario once — through
// core::Scenario::build_cached, so repeated sweeps hit the .rpsnap cache —
// runs its OffloadStudy and greedy curve once, and then evaluates each
// priced run from those shared artifacts. Groups run in parallel on
// rp::util::ThreadPool (RP_SWEEP_JOBS caps the sweep's own pool width
// independently of RP_THREADS).
//
// Resume and determinism: a completion record is written atomically (temp +
// rename) the moment its run finishes, and execute() skips any run whose
// record already exists and carries the current spec digest — so a sweep
// killed mid-flight (including via the RP_FAULT site "sweep.run") resumes
// with only the missing runs. Every row is a pure function of (spec, run
// index): summarize() concatenates record payloads in index order, which
// makes results.csv byte-identical at any RP_THREADS, interrupted or not.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/offload_study.hpp"
#include "offload/peer_groups.hpp"
#include "sweep/spec.hpp"

namespace rp::sweep {

/// Results-table schema version (bumped when columns change meaning).
inline constexpr int kResultsSchemaVersion = 1;

/// The per-run §4/§5 outcome.
struct RunResult {
  std::size_t index = 0;
  /// Snapshot-cache key of the run's world (shared across a world group).
  std::string world_digest;
  /// "ok", or "invalid-params" when the run's prices violate ineqs. 7-8
  /// (grids may legitimately cross the structural assumptions; such runs
  /// are recorded, not fatal).
  std::string status = "ok";
  double transit_bps = 0.0;        ///< Initial transit weight (in + out).
  double offload_fraction = 0.0;   ///< Fraction removed by the full curve.
  std::size_t greedy_picked = 0;   ///< IXPs the greedy expansion selected.
  double fitted_decay = 0.0;       ///< b (fitted, or pinned via econ.b).
  double optimal_n = 0.0;          ///< Eq. 11 ñ.
  double optimal_m = 0.0;          ///< Eq. 13 m̃.
  double optimal_direct_fraction = 0.0;  ///< d̃ at the eq. 11 optimum.
  double viability_ratio = 0.0;    ///< g(p−v)/(h(p−u)).
  double critical_decay = 0.0;     ///< b* = ln(ratio).
  bool viable = false;             ///< Eq. 14 verdict.
  double cost_without_remote = 0.0;
  double cost_with_remote = 0.0;
};

/// The per-world inputs shared by every run of a world group. For timeline
/// specs there is one of these per swept epoch (same world digest — the
/// epochs share the base world's cache key — but each epoch's own study,
/// curve, and prices).
struct WorldArtifacts {
  std::string world_digest;
  double initial_bps = 0.0;
  std::vector<offload::GreedyStep> curve;
  /// Epoch prices (timeline `prices` / `price-decay` events applied); the
  /// pricing baseline the spec's econ pins override. Unset on plain grids.
  econ::CostParameters epoch_prices;
  bool has_epoch_prices = false;
};

/// Derives the shared artifacts from a finished §4 study.
WorldArtifacts world_artifacts(const core::OffloadStudy& study,
                               offload::PeerGroup group, std::size_t steps);

/// Evaluates one run against its world's artifacts. Pure: the same
/// (spec, run, artifacts) always yields the same result.
RunResult evaluate_run(const SweepSpec& spec, const SweepRun& run,
                       const WorldArtifacts& artifacts);

/// The results-table header for a spec: run, one column per axis, then the
/// fixed result columns.
std::string results_csv_header(const SweepSpec& spec);

/// One CSV row (no trailing newline). Doubles print as %.10g, so rows are
/// byte-stable.
std::string results_csv_row(const SweepSpec& spec, const SweepRun& run,
                            const RunResult& result);

/// The same row as a JSON object (axis values as strings, results typed).
std::string results_json_row(const SweepSpec& spec, const SweepRun& run,
                             const RunResult& result);

/// Paths inside a sweep directory.
struct SweepPaths {
  explicit SweepPaths(std::filesystem::path dir) : dir(std::move(dir)) {}
  std::filesystem::path dir;
  std::filesystem::path manifest() const { return dir / "manifest.txt"; }
  std::filesystem::path runs_dir() const { return dir / "runs"; }
  std::filesystem::path record(std::size_t index) const;
  std::filesystem::path results_csv() const { return dir / "results.csv"; }
  std::filesystem::path results_json() const { return dir / "results.json"; }
};

/// Writes <dir>/manifest.txt atomically (creating <dir>).
void write_manifest(const SweepSpec& spec, const std::filesystem::path& dir);

/// Reads the manifest back into a spec. Throws std::runtime_error when the
/// manifest is missing/malformed or its digest does not match its own spec
/// block (a hand-edited manifest must not silently redefine a sweep).
SweepSpec read_manifest(const std::filesystem::path& dir);

struct ExecuteOutcome {
  std::size_t total = 0;     ///< Runs in the grid.
  std::size_t executed = 0;  ///< Runs evaluated and recorded this call.
  std::size_t skipped = 0;   ///< Runs with a valid prior record.
  std::size_t worlds_built = 0;  ///< World groups that had to be realized.
};

struct EngineOptions {
  /// Scenario snapshot cache; empty uses io::default_cache_dir().
  std::filesystem::path cache_dir;
};

/// Executes every run lacking a valid completion record. Propagates the
/// first run failure (including an injected "sweep.run" fault) after the
/// in-flight batch settles; records written before the failure survive, so
/// a rerun resumes. Counts land in rp.sweep.* when metrics are enabled.
ExecuteOutcome execute_sweep(const SweepSpec& spec,
                             const std::filesystem::path& dir,
                             const EngineOptions& options = {});

/// Runs with a valid completion record for this spec.
std::size_t completed_runs(const SweepSpec& spec,
                           const std::filesystem::path& dir);

/// Collates the records into results.csv / results.json (atomically).
/// Throws std::runtime_error naming the first missing run when the sweep is
/// incomplete. Returns the number of rows written.
std::size_t summarize_sweep(const SweepSpec& spec,
                            const std::filesystem::path& dir);

}  // namespace rp::sweep

#include "sweep/spec.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/config_fields.hpp"
#include "evolve/timeline.hpp"

namespace rp::sweep {
namespace {

/// The epoch-selector pseudo-field: valid only as an axis of a spec that
/// embeds a timeline; values are epoch indices into it.
constexpr std::string_view kEpochField = "evolve.epoch";

// The paper's §5 symbols. Sorted by name (find_econ_field binary-searches).
constexpr EconField kEconFields[] = {
    {"econ.b", "decay of the transit fraction with reached IXPs (eq. 3)",
     &econ::CostParameters::decay},
    {"econ.g", "per-IXP fixed cost of direct peering",
     &econ::CostParameters::direct_fixed},
    {"econ.h", "per-IXP fixed cost of remote peering",
     &econ::CostParameters::remote_fixed},
    {"econ.p", "per-unit transit price (the normalizer)",
     &econ::CostParameters::transit_price},
    {"econ.u", "per-unit cost of direct peering",
     &econ::CostParameters::direct_unit},
    {"econ.v", "per-unit cost of remote peering",
     &econ::CostParameters::remote_unit},
};

[[noreturn]] void bad_spec(std::size_t line, const std::string& what) {
  throw std::invalid_argument("sweep spec line " + std::to_string(line) +
                              ": " + what);
}

double parse_double_or(std::string_view field, std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size())
    throw std::invalid_argument("field '" + std::string(field) +
                                "': bad value '" + std::string(value) + "'");
  return out;
}

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return buffer;
}

std::uint64_t parse_count(std::size_t line, const std::string& key,
                          std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size())
    bad_spec(line, key + " wants an unsigned integer, got '" +
                       std::string(value) + "'");
  return out;
}

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

/// Expands a "lin:<lo>:<hi>:<n>" shorthand; returns false when `token` is
/// not one.
bool expand_linear(const std::string& token, std::vector<double>& out) {
  if (token.rfind("lin:", 0) != 0) return false;
  double lo = 0.0, hi = 0.0;
  std::uint64_t n = 0;
  const std::string body = token.substr(4);
  const auto first = body.find(':');
  const auto second = body.find(':', first == std::string::npos
                                          ? std::string::npos
                                          : first + 1);
  if (first == std::string::npos || second == std::string::npos)
    throw std::invalid_argument("malformed range '" + token +
                                "' (want lin:<lo>:<hi>:<n>)");
  lo = parse_double_or("lin", body.substr(0, first));
  hi = parse_double_or("lin", body.substr(first + 1, second - first - 1));
  n = parse_count(0, "lin:<n>", body.substr(second + 1));
  if (n == 0) throw std::invalid_argument("range '" + token + "' is empty");
  if (n == 1 && lo != hi)
    throw std::invalid_argument("range '" + token +
                                "' has one point but lo != hi");
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double t = n == 1 ? 0.0
                            : static_cast<double>(i) /
                                  static_cast<double>(n - 1);
    out.push_back(lo + (hi - lo) * t);
  }
  return true;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::span<const EconField> econ_fields() { return kEconFields; }

const EconField* find_econ_field(std::string_view name) {
  const auto it = std::lower_bound(
      std::begin(kEconFields), std::end(kEconFields), name,
      [](const EconField& f, std::string_view n) { return f.name < n; });
  if (it == std::end(kEconFields) || it->name != name) return nullptr;
  return &*it;
}

bool is_sweepable_field(std::string_view name) {
  return find_econ_field(name) != nullptr ||
         core::find_config_field(name) != nullptr;
}

std::string canonical_field_value(std::string_view name,
                                  std::string_view value) {
  if (find_econ_field(name) != nullptr)
    return format_double(parse_double_or(name, value));
  // Round-trip through the scenario-config registry: set on a scratch
  // config, read back the canonical token. Throws on unknown field or bad
  // value with the field named.
  core::ScenarioConfig scratch;
  core::set_config_field(scratch, name, value);
  return core::get_config_field(scratch, name);
}

std::size_t SweepSpec::run_count() const {
  std::size_t count = 1;
  for (const auto& axis : axes) count *= axis.values.size();
  return count;
}

SweepSpec parse_sweep_spec(std::string_view text) {
  SweepSpec spec;
  std::istringstream stream{std::string(text)};
  std::string raw;
  std::size_t line_no = 0;
  bool in_timeline = false;
  std::string timeline_text;
  const auto adopt_timeline = [&](const std::string& body) {
    if (!spec.timeline.empty())
      bad_spec(line_no, "duplicate timeline");
    try {
      spec.timeline =
          evolve::canonical_timeline_text(evolve::parse_timeline(body));
    } catch (const std::invalid_argument& e) {
      bad_spec(line_no, std::string("embedded timeline: ") + e.what());
    }
  };
  while (std::getline(stream, raw)) {
    ++line_no;
    if (in_timeline) {
      // Raw lines (no comment stripping) until the end marker: the block is
      // timeline grammar, not spec grammar.
      if (raw == "timeline-end") {
        in_timeline = false;
        adopt_timeline(timeline_text);
        continue;
      }
      timeline_text += raw;
      timeline_text += '\n';
      continue;
    }
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> tokens = split_tokens(raw);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];
    const auto want = [&](std::size_t n) {
      if (tokens.size() != n + 1)
        bad_spec(line_no, key + " wants " + std::to_string(n) +
                              " value(s), got " +
                              std::to_string(tokens.size() - 1));
    };
    if (key == "name") {
      want(1);
      spec.name = tokens[1];
    } else if (key == "group") {
      want(1);
      const std::uint64_t g = parse_count(line_no, "group", tokens[1]);
      if (g < 1 || g > 4) bad_spec(line_no, "group must be 1..4");
      spec.group = static_cast<int>(g);
    } else if (key == "steps") {
      want(1);
      spec.steps = parse_count(line_no, "steps", tokens[1]);
      if (spec.steps == 0) bad_spec(line_no, "steps must be >= 1");
    } else if (key == "days") {
      want(1);
      spec.days = parse_count(line_no, "days", tokens[1]);
      if (spec.days == 0) bad_spec(line_no, "days must be >= 1");
    } else if (key == "fast") {
      want(1);
      if (tokens[1] != "0" && tokens[1] != "1")
        bad_spec(line_no, "fast must be 0 or 1");
      spec.fast = tokens[1] == "1";
    } else if (key == "base") {
      want(2);
      if (!is_sweepable_field(tokens[1]))
        bad_spec(line_no, "unknown field '" + tokens[1] + "'");
      try {
        spec.base.emplace_back(tokens[1],
                               canonical_field_value(tokens[1], tokens[2]));
      } catch (const std::invalid_argument& e) {
        bad_spec(line_no, e.what());
      }
    } else if (key == "axis") {
      if (tokens.size() < 3) bad_spec(line_no, "axis wants a field + values");
      SweepAxis axis;
      axis.field = tokens[1];
      if (axis.field != kEpochField && !is_sweepable_field(axis.field))
        bad_spec(line_no, "unknown field '" + axis.field + "'");
      for (const auto& existing : spec.axes)
        if (existing.field == axis.field)
          bad_spec(line_no, "duplicate axis '" + axis.field + "'");
      try {
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          if (axis.field == kEpochField) {
            axis.values.push_back(std::to_string(
                parse_count(line_no, "evolve.epoch", tokens[i])));
            continue;
          }
          std::vector<double> range;
          if (expand_linear(tokens[i], range)) {
            for (const double v : range)
              axis.values.push_back(
                  canonical_field_value(axis.field, format_double(v)));
          } else {
            axis.values.push_back(
                canonical_field_value(axis.field, tokens[i]));
          }
        }
      } catch (const std::invalid_argument& e) {
        bad_spec(line_no, e.what());
      }
      spec.axes.push_back(std::move(axis));
    } else if (key == "timeline") {
      want(1);
      std::ifstream file(tokens[1]);
      if (!file)
        bad_spec(line_no, "cannot read timeline file '" + tokens[1] + "'");
      std::ostringstream body;
      body << file.rdbuf();
      adopt_timeline(body.str());
    } else if (key == "timeline-begin") {
      want(0);
      in_timeline = true;
      timeline_text.clear();
    } else {
      bad_spec(line_no, "unknown key '" + key + "'");
    }
  }
  if (in_timeline)
    bad_spec(line_no, "timeline-begin without timeline-end");

  // Cross-line validation: the epoch axis and the timeline need each other,
  // and a timeline spec must not also re-pin the world it evolves.
  const SweepAxis* epoch_axis = nullptr;
  for (const auto& axis : spec.axes)
    if (axis.field == kEpochField) epoch_axis = &axis;
  if (epoch_axis != nullptr && spec.timeline.empty())
    throw std::invalid_argument(
        "sweep spec: an evolve.epoch axis needs a timeline line");
  if (!spec.timeline.empty()) {
    if (epoch_axis == nullptr)
      throw std::invalid_argument(
          "sweep spec: a timeline needs an evolve.epoch axis (else nothing "
          "selects the epochs)");
    const std::size_t epochs =
        evolve::parse_timeline(spec.timeline).epochs.size();
    for (const auto& value : epoch_axis->values)
      if (std::strtoull(value.c_str(), nullptr, 10) >= epochs)
        throw std::invalid_argument("sweep spec: evolve.epoch " + value +
                                    " out of range (timeline has " +
                                    std::to_string(epochs) + " epochs)");
    const auto reject_world_field = [](const std::string& field) {
      if (field != kEpochField && find_econ_field(field) == nullptr)
        throw std::invalid_argument(
            "sweep spec: field '" + field +
            "' conflicts with the timeline (its fast/base lines pin the "
            "world; sweep econ.* or evolve.epoch)");
    };
    for (const auto& [field, value] : spec.base) reject_world_field(field);
    for (const auto& axis : spec.axes) reject_world_field(axis.field);
  }
  return spec;
}

SweepSpec load_sweep_spec(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read sweep spec: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return parse_sweep_spec(text.str());
}

std::string canonical_spec_text(const SweepSpec& spec) {
  std::ostringstream out;
  out << "name " << spec.name << "\n";
  out << "group " << spec.group << "\n";
  out << "steps " << spec.steps << "\n";
  out << "days " << spec.days << "\n";
  out << "fast " << (spec.fast ? 1 : 0) << "\n";
  if (!spec.timeline.empty())
    out << "timeline-begin\n" << spec.timeline << "timeline-end\n";
  for (const auto& [field, value] : spec.base)
    out << "base " << field << " " << value << "\n";
  for (const auto& axis : spec.axes) {
    out << "axis " << axis.field;
    for (const auto& value : axis.values) out << " " << value;
    out << "\n";
  }
  return out.str();
}

std::string spec_digest_hex(const SweepSpec& spec) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(
                    fnv1a64(canonical_spec_text(spec))));
  return buffer;
}

std::vector<SweepRun> expand_runs(const SweepSpec& spec) {
  const std::size_t total = spec.run_count();
  std::vector<SweepRun> runs;
  runs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    SweepRun run;
    run.index = i;
    run.values.resize(spec.axes.size());
    // Mixed-radix decomposition, last axis fastest.
    std::size_t rest = i;
    for (std::size_t a = spec.axes.size(); a > 0; --a) {
      const auto& axis = spec.axes[a - 1];
      run.values[a - 1] = axis.values[rest % axis.values.size()];
      rest /= axis.values.size();
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

MaterializedRun materialize_run(const SweepSpec& spec, const SweepRun& run,
                                const econ::CostParameters* base_prices) {
  MaterializedRun out;
  if (base_prices != nullptr) out.prices = *base_prices;
  if (!spec.timeline.empty())
    out.config = evolve::parse_timeline(spec.timeline).base_config();
  else if (spec.fast)
    core::apply_fast_mode(out.config);
  const auto apply = [&](const std::string& field, const std::string& value) {
    if (field == kEpochField) {
      out.has_epoch = true;
      out.epoch = std::strtoull(value.c_str(), nullptr, 10);
      return;
    }
    if (const EconField* econ = find_econ_field(field)) {
      out.prices.*(econ->member) = parse_double_or(field, value);
      if (field == "econ.b") out.decay_pinned = true;
      return;
    }
    core::set_config_field(out.config, field, value);
  };
  for (const auto& [field, value] : spec.base) apply(field, value);
  for (std::size_t a = 0; a < spec.axes.size(); ++a)
    apply(spec.axes[a].field, run.values[a]);
  return out;
}

}  // namespace rp::sweep

// rp::sweep specs: a declarative grid over worlds and prices.
//
// A sweep spec names a set of axes — each axis a config field crossed with a
// value list — plus base overrides and study knobs. Expansion is the plain
// cartesian product in spec order with the last axis varying fastest, so a
// grid always enumerates to the same run list: run index i is a pure
// function of the spec, which is what makes manifests, resume records, and
// results tables comparable across machines and thread counts.
//
// Two field namespaces are sweepable:
//   * scenario-config fields, addressed by the dotted names of
//     core::scenario_config_fields() ("seed", "topology.access_count", ...);
//     changing any of them changes the world (and its snapshot cache key);
//   * econ fields, addressed by the paper's symbols prefixed with "econ."
//     ("econ.p" transit price, "econ.g", "econ.u", "econ.h", "econ.v",
//     "econ.b" decay); they reprice the §5 model on an already-built world.
//
// Spec text is line-based:
//
//   # comment
//   name  <slug>                  output directory stem (default "sweep")
//   group <1..4>                  peer group for the greedy curve (default 4)
//   steps <N>                     greedy max steps (default 30)
//   days  <N>                     rate-model span in days (default 14)
//   fast  <0|1>                   apply core::apply_fast_mode first
//   base  <field> <value>         pin a field for every run
//   axis  <field> <v1> <v2> ...   explicit value list
//   axis  <field> lin:<lo>:<hi>:<n>   n evenly spaced values in [lo, hi]
//   timeline <path>               embed an rp::evolve timeline; unlocks the
//                                 "evolve.epoch" axis (epoch indices)
//
// Values are validated and canonicalized at parse time (parse, then format
// back), so a spec written as "0.10" and one written as "0.1" expand to
// byte-identical manifests and results.
//
// A spec with a timeline sweeps *epochs of one evolving world* instead of a
// family of worlds: the timeline's own fast/base lines define the base
// scenario, an "evolve.epoch" axis (required) selects epochs, and the only
// other sweepable fields are econ.* — each run starts from its epoch's
// prices (timeline `prices` / `price-decay` events included) and the spec's
// econ pins override individual symbols on top. The canonical form embeds
// the timeline between `timeline-begin` / `timeline-end` lines, so a
// manifest stays self-contained and the spec digest covers the timeline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "econ/cost_model.hpp"

namespace rp::sweep {

/// One sweepable econ::CostParameters field ("econ.p" ... "econ.b").
struct EconField {
  std::string_view name;         ///< Prefixed name, e.g. "econ.h".
  std::string_view description;  ///< One line, for `rpsweep fields` and docs.
  double econ::CostParameters::*member;
};

/// Every econ field, sorted by name.
std::span<const EconField> econ_fields();

/// Looks an econ field up by its prefixed name; nullptr when unknown.
const EconField* find_econ_field(std::string_view name);

/// True when `name` addresses either namespace (scenario config or econ).
bool is_sweepable_field(std::string_view name);

/// Canonicalizes a value token for `name` (parse + format back). Throws
/// std::invalid_argument naming the field when the value does not parse.
std::string canonical_field_value(std::string_view name,
                                  std::string_view value);

/// One axis of the grid.
struct SweepAxis {
  std::string field;
  std::vector<std::string> values;  ///< Canonicalized, non-empty.
};

/// A parsed sweep specification.
struct SweepSpec {
  std::string name = "sweep";
  int group = 4;               ///< offload::PeerGroup, 1..4.
  std::size_t steps = 30;      ///< Greedy expansion max steps.
  std::size_t days = 14;       ///< Rate-model span, days.
  bool fast = false;           ///< Apply core::apply_fast_mode to the base.
  /// Pinned fields, applied in spec order after fast mode (so a base line
  /// overrides the fast-mode shrink).
  std::vector<std::pair<std::string, std::string>> base;
  std::vector<SweepAxis> axes;
  /// Canonical rp::evolve timeline text; empty when this is a plain grid.
  /// Non-empty restricts base/axis fields to econ.* plus the mandatory
  /// "evolve.epoch" axis, and the timeline defines the base world.
  std::string timeline;

  /// Total runs: the product of the axis sizes (1 when there are no axes).
  std::size_t run_count() const;
};

/// Parses spec text. Throws std::invalid_argument with the 1-based line
/// number and the offending token on any violation (unknown key or field,
/// duplicate axis, bad value, empty axis).
SweepSpec parse_sweep_spec(std::string_view text);

/// Reads and parses a spec file. Throws std::runtime_error when the file
/// cannot be read, std::invalid_argument on parse errors.
SweepSpec load_sweep_spec(const std::string& path);

/// The canonical text form of a spec: regenerating it from the parsed
/// struct normalizes whitespace, comments, and value spelling. Manifest
/// files embed this block and digest it.
std::string canonical_spec_text(const SweepSpec& spec);

/// FNV-1a-64 digest of canonical_spec_text, as 16 hex digits — the identity
/// a results table and every per-run record carry.
std::string spec_digest_hex(const SweepSpec& spec);

/// One expanded run: `values[a]` is the value of `spec.axes[a]`.
struct SweepRun {
  std::size_t index = 0;
  std::vector<std::string> values;
};

/// Expands the full deterministic run list (index order, last axis fastest).
std::vector<SweepRun> expand_runs(const SweepSpec& spec);

/// A run materialized into study inputs.
struct MaterializedRun {
  core::ScenarioConfig config;
  econ::CostParameters prices;
  /// True when econ.b was pinned by a base line or an axis: the §5 study
  /// then uses the explicit decay instead of fitting it from the curve.
  bool decay_pinned = false;
  /// Epoch selected by an "evolve.epoch" axis (timeline specs only).
  bool has_epoch = false;
  std::size_t epoch = 0;
};

/// Applies defaults, fast mode, base lines, then the run's axis values.
/// Timeline specs take their config from the embedded timeline's base; when
/// `base_prices` is non-null the econ pins apply on top of it instead of the
/// defaults (the engine passes the run's epoch prices here).
MaterializedRun materialize_run(const SweepSpec& spec, const SweepRun& run,
                                const econ::CostParameters* base_prices =
                                    nullptr);

}  // namespace rp::sweep

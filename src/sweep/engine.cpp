#include "sweep/engine.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/viability_study.hpp"
#include "evolve/engine.hpp"
#include "fault/fault.hpp"
#include "io/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::sweep {
namespace {

std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.10g", v);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Atomic file write: stage into a sibling temp file, then rename. A killed
/// sweep never leaves a partial record or results table visible.
void atomic_write(const std::filesystem::path& path,
                  const std::string& content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) throw std::runtime_error("cannot write " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

std::string record_header(const std::string& digest, std::size_t index) {
  return "rpsweep-record v1 " + digest + " " + std::to_string(index);
}

/// Reads a completion record; nullopt when missing, malformed, or written
/// by a different spec (a stale record must look incomplete, not poison the
/// table).
struct RecordPayload {
  std::string csv;
  std::string json;
};
std::optional<RecordPayload> read_record(const std::filesystem::path& path,
                                         const std::string& digest,
                                         std::size_t index) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string header, csv, json;
  if (!std::getline(in, header) || !std::getline(in, csv) ||
      !std::getline(in, json))
    return std::nullopt;
  if (header != record_header(digest, index) || csv.empty() || json.empty())
    return std::nullopt;
  return RecordPayload{std::move(csv), std::move(json)};
}

/// RP_SWEEP_JOBS: width of the sweep's own pool (clamped to [1, 512]);
/// 0 / unset / unparsable falls through to ThreadPool::global().
unsigned sweep_jobs_from_env() {
  const char* raw = std::getenv("RP_SWEEP_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || value == 0) return 0;
  return static_cast<unsigned>(value > 512 ? 512 : value);
}

}  // namespace

WorldArtifacts world_artifacts(const core::OffloadStudy& study,
                               offload::PeerGroup group, std::size_t steps) {
  WorldArtifacts artifacts;
  const auto& analyzer = study.analyzer();
  artifacts.initial_bps =
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();
  artifacts.curve = analyzer.greedy_by_traffic(group, steps);
  return artifacts;
}

RunResult evaluate_run(const SweepSpec& spec, const SweepRun& run,
                       const WorldArtifacts& artifacts) {
  const MaterializedRun mat = materialize_run(
      spec, run,
      artifacts.has_epoch_prices ? &artifacts.epoch_prices : nullptr);
  RunResult result;
  result.index = run.index;
  result.world_digest = artifacts.world_digest;
  result.transit_bps = artifacts.initial_bps;
  result.greedy_picked = artifacts.curve.size();
  if (!artifacts.curve.empty() && artifacts.initial_bps > 0.0)
    result.offload_fraction =
        (artifacts.initial_bps - artifacts.curve.back().remaining) /
        artifacts.initial_bps;

  // The decay b: pinned by an econ.b base/axis, otherwise fitted from this
  // world's greedy curve (a flat curve keeps the spec's default b — the
  // result is still deterministic, just not world-informed).
  double decay = mat.prices.decay;
  if (!mat.decay_pinned) {
    try {
      decay = core::ViabilityStudy::from_greedy_curve(
                  artifacts.curve, artifacts.initial_bps, mat.prices)
                  .fitted_decay();
    } catch (const std::invalid_argument&) {
      // Curve never offloads (or the world is empty): keep the default b.
    }
  }
  try {
    const core::ViabilityStudy study =
        core::ViabilityStudy::from_decay(decay, mat.prices);
    const econ::CostModel& model = study.model();
    result.fitted_decay = decay;
    result.optimal_n = study.optimal_direct_n();
    result.optimal_m = study.optimal_remote_m();
    result.optimal_direct_fraction = study.optimal_direct_fraction();
    result.viability_ratio = model.viability_ratio();
    result.critical_decay = model.critical_decay();
    result.viable = study.remote_viable();
    result.cost_without_remote = model.cost_without_remote(result.optimal_n);
    result.cost_with_remote =
        model.total_cost(result.optimal_n, result.optimal_m);
  } catch (const std::invalid_argument&) {
    // Grid corners may cross ineqs. 7-8 (e.g. an econ.h axis reaching g).
    // Record the violation instead of aborting a thousand-run sweep.
    result.status = "invalid-params";
  }
  return result;
}

std::string results_csv_header(const SweepSpec& spec) {
  std::string header = "run";
  for (const auto& axis : spec.axes) header += "," + axis.field;
  header +=
      ",world,status,transit_bps,offload_fraction,greedy_picked,"
      "fitted_decay,optimal_n,optimal_m,optimal_direct_fraction,"
      "viability_ratio,critical_decay,viable,cost_without_remote,"
      "cost_with_remote";
  return header;
}

std::string results_csv_row(const SweepSpec& spec, const SweepRun& run,
                            const RunResult& result) {
  std::string row = std::to_string(run.index);
  for (std::size_t a = 0; a < spec.axes.size(); ++a)
    row += "," + run.values[a];
  row += "," + result.world_digest;
  row += "," + result.status;
  row += "," + format_double(result.transit_bps);
  row += "," + format_double(result.offload_fraction);
  row += "," + std::to_string(result.greedy_picked);
  row += "," + format_double(result.fitted_decay);
  row += "," + format_double(result.optimal_n);
  row += "," + format_double(result.optimal_m);
  row += "," + format_double(result.optimal_direct_fraction);
  row += "," + format_double(result.viability_ratio);
  row += "," + format_double(result.critical_decay);
  row += result.viable ? ",1" : ",0";
  row += "," + format_double(result.cost_without_remote);
  row += "," + format_double(result.cost_with_remote);
  return row;
}

std::string results_json_row(const SweepSpec& spec, const SweepRun& run,
                             const RunResult& result) {
  std::ostringstream out;
  out << "{\"run\":" << run.index << ",\"axes\":{";
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    if (a != 0) out << ",";
    out << "\"" << json_escape(spec.axes[a].field) << "\":\""
        << json_escape(run.values[a]) << "\"";
  }
  out << "},\"world\":\"" << json_escape(result.world_digest) << "\""
      << ",\"status\":\"" << json_escape(result.status) << "\""
      << ",\"transit_bps\":" << format_double(result.transit_bps)
      << ",\"offload_fraction\":" << format_double(result.offload_fraction)
      << ",\"greedy_picked\":" << result.greedy_picked
      << ",\"fitted_decay\":" << format_double(result.fitted_decay)
      << ",\"optimal_n\":" << format_double(result.optimal_n)
      << ",\"optimal_m\":" << format_double(result.optimal_m)
      << ",\"optimal_direct_fraction\":"
      << format_double(result.optimal_direct_fraction)
      << ",\"viability_ratio\":" << format_double(result.viability_ratio)
      << ",\"critical_decay\":" << format_double(result.critical_decay)
      << ",\"viable\":" << (result.viable ? "true" : "false")
      << ",\"cost_without_remote\":"
      << format_double(result.cost_without_remote)
      << ",\"cost_with_remote\":" << format_double(result.cost_with_remote)
      << "}";
  return out.str();
}

std::filesystem::path SweepPaths::record(std::size_t index) const {
  char name[32];
  std::snprintf(name, sizeof name, "run-%06zu.rec", index);
  return runs_dir() / name;
}

void write_manifest(const SweepSpec& spec, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::ostringstream out;
  out << "rpsweep-manifest v1\n"
      << "digest " << spec_digest_hex(spec) << "\n"
      << "runs " << spec.run_count() << "\n"
      << "spec\n"
      << canonical_spec_text(spec);
  atomic_write(SweepPaths(dir).manifest(), out.str());
}

SweepSpec read_manifest(const std::filesystem::path& dir) {
  const std::filesystem::path path = SweepPaths(dir).manifest();
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("no sweep manifest at " + path.string() +
                             " (run `rpsweep plan` or `rpsweep run` first)");
  std::string line;
  if (!std::getline(in, line) || line != "rpsweep-manifest v1")
    throw std::runtime_error("unsupported manifest header in " +
                             path.string());
  std::string digest;
  if (!std::getline(in, line) || line.rfind("digest ", 0) != 0)
    throw std::runtime_error("manifest missing digest line: " +
                             path.string());
  digest = line.substr(7);
  std::size_t runs = 0;
  if (!std::getline(in, line) || line.rfind("runs ", 0) != 0)
    throw std::runtime_error("manifest missing runs line: " + path.string());
  runs = std::strtoull(line.substr(5).c_str(), nullptr, 10);
  if (!std::getline(in, line) || line != "spec")
    throw std::runtime_error("manifest missing spec block: " + path.string());
  std::ostringstream spec_text;
  spec_text << in.rdbuf();
  const SweepSpec spec = parse_sweep_spec(spec_text.str());
  if (spec_digest_hex(spec) != digest)
    throw std::runtime_error("manifest digest mismatch in " + path.string() +
                             " (hand-edited spec block?)");
  if (spec.run_count() != runs)
    throw std::runtime_error("manifest run count mismatch in " +
                             path.string());
  return spec;
}

ExecuteOutcome execute_sweep(const SweepSpec& spec,
                             const std::filesystem::path& dir,
                             const EngineOptions& options) {
  obs::Span span("sweep.execute");
  static obs::Counter runs_executed("rp.sweep.runs.executed");
  static obs::Counter runs_skipped("rp.sweep.runs.skipped");
  static obs::Counter worlds_built_counter("rp.sweep.worlds.built");
  static obs::Gauge runs_total("rp.sweep.runs.total");
  static fault::Site run_site(fault::kSiteSweepRun);

  const SweepPaths paths(dir);
  std::filesystem::create_directories(paths.runs_dir());
  const std::filesystem::path cache_dir =
      options.cache_dir.empty() ? io::default_cache_dir() : options.cache_dir;
  const std::string digest = spec_digest_hex(spec);
  const std::vector<SweepRun> runs = expand_runs(spec);
  runs_total.set(static_cast<double>(runs.size()));

  // Shard by world: runs differing only in econ.* fields share a scenario
  // config, so the group realizes the world (and its offload study + greedy
  // curve) exactly once. Group order follows first appearance, but the
  // output does not depend on it — records are keyed by run index.
  struct Group {
    core::ScenarioConfig config;
    std::string world_digest;
    std::vector<std::size_t> run_ids;
  };
  std::vector<Group> groups;
  std::unordered_map<std::string, std::size_t> group_index;
  for (const auto& run : runs) {
    const MaterializedRun mat = materialize_run(spec, run);
    std::string world = io::config_digest_hex(mat.config);
    const auto [it, inserted] =
        group_index.try_emplace(std::move(world), groups.size());
    if (inserted)
      groups.push_back(Group{mat.config, io::config_digest_hex(mat.config), {}});
    groups[it->second].run_ids.push_back(run.index);
  }

  ExecuteOutcome outcome;
  outcome.total = runs.size();
  std::vector<char> done(runs.size(), 0);
  for (const auto& run : runs)
    done[run.index] =
        read_record(paths.record(run.index), digest, run.index).has_value()
            ? 1
            : 0;
  for (const char d : done) outcome.skipped += d != 0 ? 1 : 0;
  runs_skipped.add(outcome.skipped);

  util::ThreadPool* pool = &util::ThreadPool::global();
  std::optional<util::ThreadPool> own_pool;
  if (const unsigned jobs = sweep_jobs_from_env(); jobs > 0) {
    own_pool.emplace(jobs);
    pool = &*own_pool;
  }

  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> worlds_built{0};
  pool->parallel_for(groups.size(), [&](std::size_t gi) {
    const Group& group = groups[gi];
    bool pending = false;
    for (const std::size_t id : group.run_ids) pending |= done[id] == 0;
    if (!pending) return;

    obs::Span world_span("sweep.world");
    const core::Scenario scenario =
        core::Scenario::build_cached(group.config, cache_dir);
    core::OffloadStudyConfig study_config;
    study_config.rate_model.span =
        util::SimDuration::days(static_cast<std::int64_t>(spec.days));
    worlds_built.fetch_add(1, std::memory_order_relaxed);
    worlds_built_counter.add();

    // Timeline specs replay epochs over the group's world; each swept epoch
    // realizes its own artifacts lazily. Plain grids keep the single shared
    // artifact set. The engine cursor is per-group, so runs stay serial
    // within a group and parallelism stays across groups.
    std::optional<evolve::EpochTimeline> evolution;
    if (!spec.timeline.empty())
      evolution.emplace(evolve::parse_timeline(spec.timeline), scenario);
    std::unordered_map<std::size_t, WorldArtifacts> epoch_artifacts;
    WorldArtifacts shared_artifacts;
    if (!evolution) {
      const core::OffloadStudy study =
          core::OffloadStudy::run(scenario, study_config);
      shared_artifacts = world_artifacts(
          study, static_cast<offload::PeerGroup>(spec.group), spec.steps);
      shared_artifacts.world_digest = group.world_digest;
    }

    for (const std::size_t id : group.run_ids) {
      if (done[id] != 0) continue;
      obs::Span run_span("sweep.run");
      // The kill switch the resume tests arm: RP_FAULT=sweep.run:nth=K
      // aborts the sweep exactly K completed-or-attempted runs in, after
      // the records of earlier runs are already on disk.
      run_site.maybe_throw();
      const WorldArtifacts* artifacts = &shared_artifacts;
      if (evolution) {
        const std::size_t epoch = materialize_run(spec, runs[id]).epoch;
        const auto [it, inserted] = epoch_artifacts.try_emplace(epoch);
        if (inserted) {
          obs::Span epoch_span("sweep.epoch");
          const core::OffloadStudy study = core::OffloadStudy::run(
              evolution->view_at(epoch),
              evolution->study_config_at(epoch, study_config));
          it->second = world_artifacts(
              study, static_cast<offload::PeerGroup>(spec.group), spec.steps);
          it->second.world_digest = group.world_digest;
          it->second.epoch_prices = evolution->state_at(epoch).prices;
          it->second.has_epoch_prices = true;
        }
        artifacts = &it->second;
      }
      const RunResult result = evaluate_run(spec, runs[id], *artifacts);
      const std::string content =
          record_header(digest, id) + "\n" +
          results_csv_row(spec, runs[id], result) + "\n" +
          results_json_row(spec, runs[id], result) + "\n";
      atomic_write(paths.record(id), content);
      executed.fetch_add(1, std::memory_order_relaxed);
      runs_executed.add();
    }
  });

  outcome.executed = executed.load();
  outcome.worlds_built = worlds_built.load();
  return outcome;
}

std::size_t completed_runs(const SweepSpec& spec,
                           const std::filesystem::path& dir) {
  const SweepPaths paths(dir);
  const std::string digest = spec_digest_hex(spec);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < spec.run_count(); ++i)
    completed += read_record(paths.record(i), digest, i).has_value() ? 1 : 0;
  return completed;
}

std::size_t summarize_sweep(const SweepSpec& spec,
                            const std::filesystem::path& dir) {
  obs::Span span("sweep.summarize");
  static obs::Counter summaries("rp.sweep.summaries");
  const SweepPaths paths(dir);
  const std::string digest = spec_digest_hex(spec);
  const std::size_t total = spec.run_count();

  std::string csv = "#rpsweep-results v" +
                    std::to_string(kResultsSchemaVersion) + " name=" +
                    spec.name + " spec=" + digest + " runs=" +
                    std::to_string(total) + "\n" +
                    results_csv_header(spec) + "\n";
  std::string json = "{\"schema\":\"rpsweep-results-v" +
                     std::to_string(kResultsSchemaVersion) + "\",\"name\":\"" +
                     json_escape(spec.name) + "\",\"spec\":\"" + digest +
                     "\",\"rows\":[";
  std::size_t recorded = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const auto record = read_record(paths.record(i), digest, i);
    if (!record)
      throw std::runtime_error(
          "sweep incomplete: run " + std::to_string(i) +
          " has no completion record (" + std::to_string(recorded) + " of " +
          std::to_string(total) + " recorded) — `rpsweep resume` finishes it");
    csv += record->csv + "\n";
    if (i != 0) json += ",";
    json += record->json;
    ++recorded;
  }
  json += "]}\n";
  atomic_write(paths.results_csv(), csv);
  atomic_write(paths.results_json(), json);
  summaries.add();
  return recorded;
}

}  // namespace rp::sweep

// A slab allocator for fixed-size slots, addressed by 32-bit handles.
//
// Built for the discrete-event simulator's event records: the hot path
// allocates and releases one slot per event, so both operations must be a
// handful of instructions and must never touch malloc once a slab exists.
// Slots live in fixed-capacity slabs that are never reallocated, so a
// pointer obtained from at() stays valid across later allocations — the
// property the simulator relies on when a running event schedules new ones.
// Freed slots form an intrusive LIFO free list threaded through the slot
// bytes themselves (a freed slot stores the index of the next free slot).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace rp::util {

template <std::size_t SlotBytes, std::size_t SlotAlign = alignof(std::max_align_t)>
class SlabArena {
  static_assert(SlotBytes >= sizeof(std::uint32_t),
                "slots must hold a free-list index");

 public:
  using Index = std::uint32_t;
  static constexpr Index kInvalidIndex = ~Index{0};

  /// Claims a slot and returns its handle. Reuses the most recently released
  /// slot when one exists; otherwise bump-allocates, growing by one slab
  /// (kSlabSlots slots) at a time.
  Index allocate() {
    ++live_;
    if (free_head_ != kInvalidIndex) {
      const Index index = free_head_;
      std::memcpy(&free_head_, slot_ptr(index), sizeof(Index));
      return index;
    }
    const Index index = bump_++;
    if ((index >> kSlabShift) == slabs_.size())
      slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
    return index;
  }

  /// Returns a slot to the free list. The handle must come from allocate()
  /// and must not be released twice.
  void release(Index index) {
    --live_;
    std::memcpy(slot_ptr(index), &free_head_, sizeof(Index));
    free_head_ = index;
  }

  /// The slot's storage; stable until release (slabs never move).
  void* at(Index index) { return slot_ptr(index); }
  const void* at(Index index) const {
    return slabs_[index >> kSlabShift][index & kSlabMask].bytes;
  }

  /// Slots currently allocated.
  std::size_t live() const { return live_; }
  /// Total slot capacity reserved so far.
  std::size_t capacity() const { return slabs_.size() * kSlabSlots; }

 private:
  static constexpr std::size_t kSlabShift = 10;  ///< 1024 slots per slab.
  static constexpr std::size_t kSlabSlots = std::size_t{1} << kSlabShift;
  static constexpr std::size_t kSlabMask = kSlabSlots - 1;

  struct alignas(SlotAlign) Slot {
    std::byte bytes[SlotBytes];
  };

  void* slot_ptr(Index index) {
    return slabs_[index >> kSlabShift][index & kSlabMask].bytes;
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Index free_head_ = kInvalidIndex;
  Index bump_ = 0;
  std::size_t live_ = 0;
};

}  // namespace rp::util

// A small fixed-size thread pool for the embarrassingly parallel stages of
// the pipeline: per-IXP measurement campaigns (§3), per-destination route
// computation, and the per-IXP argmax scans of the offload analysis (§4).
//
// Work is always expressed as an indexed loop (`parallel_for(n, fn)` runs
// fn(0..n-1)), so results land in caller-owned slots and the output is
// independent of scheduling order — the same inputs produce byte-identical
// results at any thread count. Worker count comes from the RP_THREADS
// environment variable, defaulting to std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means configured_threads(). A pool of one
  /// thread spawns no workers and runs every loop inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical parallelism (1 when the pool runs inline).
  unsigned thread_count() const { return threads_; }

  /// Worker count from RP_THREADS (clamped to [1, 512]), or
  /// hardware_concurrency() when unset/unparsable.
  static unsigned configured_threads();

  /// The process-wide pool, built on first use with configured_threads().
  static ThreadPool& global();

  /// Replaces the global pool with one of `threads` workers (0 restores the
  /// RP_THREADS/hardware default on next use). Intended for tests and tools;
  /// must not race with loops running on the old pool.
  static void set_global_threads(unsigned threads);

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// workers, and blocks until all complete. Calls from inside a worker (or
  /// on a single-thread pool) run inline and serial, so nesting cannot
  /// deadlock. The first exception thrown by any fn is rethrown here.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1 || on_worker_thread()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    Batch batch;
    batch.n = n;
    const std::size_t tasks = std::min<std::size_t>(workers_.size(), n);
    batch.pending_tasks = tasks;
    auto run_chunk = [&batch, &fn] {
      for (std::size_t i = batch.next.fetch_add(1); i < batch.n;
           i = batch.next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::scoped_lock lock(batch.mutex);
          if (!batch.error) batch.error = std::current_exception();
        }
      }
    };
    {
      std::scoped_lock lock(queue_mutex_);
      for (std::size_t t = 0; t < tasks; ++t)
        queue_.emplace_back([&batch, run_chunk] {
          run_chunk();
          std::scoped_lock lock(batch.mutex);
          if (--batch.pending_tasks == 0) batch.done.notify_all();
        });
    }
    queue_cv_.notify_all();
    std::unique_lock lock(batch.mutex);
    batch.done.wait(lock, [&batch] { return batch.pending_tasks == 0; });
    if (batch.error) std::rethrow_exception(batch.error);
  }

  /// Runs fn(i) for every i in [0, n) and collects the results, in index
  /// order, into a vector. The result type must be default-constructible
  /// and movable.
  template <typename Fn>
  auto parallel_transform(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> out(n);
    parallel_for(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::size_t pending_tasks = 0;  ///< Guarded by mutex.
    std::exception_ptr error;       ///< Guarded by mutex.
    std::mutex mutex;
    std::condition_variable done;
  };

  static bool& worker_flag();
  static bool on_worker_thread() { return worker_flag(); }
  void worker_loop();

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

}  // namespace rp::util

// A small fixed-size thread pool for the embarrassingly parallel stages of
// the pipeline: per-IXP measurement campaigns (§3), per-destination route
// computation, and the per-IXP argmax scans of the offload analysis (§4).
//
// Work is always expressed as an indexed loop (`parallel_for(n, fn)` runs
// fn(0..n-1)), so results land in caller-owned slots and the output is
// independent of scheduling order — the same inputs produce byte-identical
// results at any thread count. Worker count comes from the RP_THREADS
// environment variable, defaulting to std::thread::hardware_concurrency().
//
// Submission allocates nothing: a parallel_for call enqueues a single
// pointer to its stack-resident Batch (loop body type-erased to a plain
// function pointer + context), and each worker that picks the batch up
// claims indices from a shared atomic cursor. The batch stays at the queue
// front until the intended number of workers has entered it, so the caller
// can rely on exactly that many decrements before its stack frame unwinds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace rp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means configured_threads(). A pool of one
  /// thread spawns no workers and runs every loop inline on the caller.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical parallelism (1 when the pool runs inline).
  unsigned thread_count() const { return threads_; }

  /// Worker count from RP_THREADS (clamped to [1, 512]), or
  /// hardware_concurrency() when unset/unparsable.
  static unsigned configured_threads();

  /// The process-wide pool, built on first use with configured_threads().
  static ThreadPool& global();

  /// Replaces the global pool with one of `threads` workers (0 restores the
  /// RP_THREADS/hardware default on next use). Intended for tests and tools;
  /// must not race with loops running on the old pool.
  static void set_global_threads(unsigned threads);

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// workers, and blocks until all complete. Calls from inside a worker (or
  /// on a single-thread pool) run inline and serial, so nesting cannot
  /// deadlock. The first exception thrown by any fn is rethrown here.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (obs::metrics_enabled()) note_parallel_for(n);
    if (workers_.empty() || n == 1 || on_worker_thread()) {
      // The pool.task site fires on the inline path too, so RP_THREADS=1
      // injects the same faults a worker run does (the throw just propagates
      // directly instead of via the batch's error slot). The disarmed check
      // is hoisted out of the loop: inline loops can be tight argmax scans,
      // so the disarmed cost is one branch per call, not per index.
      if (fault::injection_enabled()) {
        for (std::size_t i = 0; i < n; ++i) {
          task_site().maybe_throw();
          fn(i);
        }
        return;
      }
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    Batch batch;
    batch.n = n;
    batch.tasks = std::min<std::size_t>(workers_.size(), n);
    batch.pending = batch.tasks;
    using Body = std::remove_reference_t<Fn>;
    batch.ctx = const_cast<void*>(
        static_cast<const void*>(std::addressof(fn)));
    batch.invoke = [](void* ctx, std::size_t i) {
      (*static_cast<Body*>(ctx))(i);
    };
    submit_and_wait(&batch);
  }

  /// Runs fn(i) for every i in [0, n) and collects the results, in index
  /// order, into a vector. The result type must be default-constructible
  /// and movable.
  template <typename Fn>
  auto parallel_transform(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> out(n);
    parallel_for(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  /// One parallel_for in flight. Stack-allocated by the caller; the queue
  /// holds only the pointer. `tasks` workers enter the batch (it is popped
  /// when the last one does) and each decrements `pending` exactly once, so
  /// the caller's wait completes only after every entrant is done touching
  /// the batch.
  struct Batch {
    std::atomic<std::size_t> next{0};  ///< Index-claim cursor.
    std::size_t n = 0;
    void (*invoke)(void*, std::size_t) = nullptr;
    void* ctx = nullptr;
    std::size_t tasks = 0;          ///< Workers that will enter this batch.
    std::size_t entered = 0;        ///< Guarded by queue_mutex_.
    std::uint64_t enqueue_ns = 0;   ///< Set only when metrics are enabled.
    std::size_t pending = 0;        ///< Guarded by mutex.
    std::exception_ptr error;       ///< Guarded by mutex.
    std::mutex mutex;
    std::condition_variable done;
  };

  static bool& worker_flag();
  static bool on_worker_thread() { return worker_flag(); }
  static fault::Site& task_site();
  static void note_parallel_for(std::size_t n);
  void submit_and_wait(Batch* batch);
  void run_batch(Batch* batch);
  void worker_loop();

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<Batch*> queue_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

}  // namespace rp::util

#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace rp::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t range = hi - lo;
  if (range == std::numeric_limits<std::uint64_t>::max()) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t span = range + 1;
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + draw % span;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: mean <= 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_min, double alpha) {
  if (x_min <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument("pareto: parameters must be positive");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return x_min / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the label with fresh output so that forks with different labels are
  // independent, and forking does not correlate with the parent stream.
  std::uint64_t s = (*this)() ^ (label * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(s));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("weighted_index: no positive weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: last positive bucket.
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = sum;
  }
  for (double& c : cdf_) c /= sum;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

DoubleParetoSampler::DoubleParetoSampler(double scale, double head_alpha,
                                         double tail_alpha,
                                         std::size_t knee_rank)
    : scale_(scale),
      head_alpha_(head_alpha),
      tail_alpha_(tail_alpha),
      knee_rank_(knee_rank) {
  if (scale <= 0.0 || head_alpha <= 0.0 || tail_alpha <= 0.0 || knee_rank == 0)
    throw std::invalid_argument("DoubleParetoSampler: invalid parameters");
  knee_volume_ =
      scale_ / std::pow(static_cast<double>(knee_rank_), head_alpha_);
}

double DoubleParetoSampler::volume_at_rank(std::size_t rank) const {
  if (rank == 0) throw std::invalid_argument("volume_at_rank: rank is 1-based");
  const double r = static_cast<double>(rank);
  if (rank <= knee_rank_) return scale_ / std::pow(r, head_alpha_);
  const double excess = r / static_cast<double>(knee_rank_);
  return knee_volume_ / std::pow(excess, tail_alpha_);
}

}  // namespace rp::util

#include "util/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace rp::util {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("fit_linear: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("fit_linear: need >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) throw std::invalid_argument("fit_linear: constant x");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  if (syy == 0.0) {
    f.r_squared = 1.0;  // All y identical and reproduced exactly.
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (f.slope * x[i] + f.intercept);
      ss_res += e * e;
    }
    f.r_squared = 1.0 - ss_res / syy;
  }
  return f;
}

double ExponentialDecayFit::evaluate(double x) const {
  return amplitude * std::exp(-decay * x);
}

ExponentialDecayFit fit_exponential_decay(const std::vector<double>& x,
                                          const std::vector<double>& y) {
  std::vector<double> log_y;
  log_y.reserve(y.size());
  for (double v : y) {
    if (v <= 0.0)
      throw std::invalid_argument("fit_exponential_decay: y must be > 0");
    log_y.push_back(std::log(v));
  }
  const LinearFit lin = fit_linear(x, log_y);
  ExponentialDecayFit f;
  f.amplitude = std::exp(lin.intercept);
  f.decay = -lin.slope;
  f.r_squared = lin.r_squared;
  return f;
}

}  // namespace rp::util

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace rp::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  aligns_.at(column) = align;
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_cell = [&](const std::string& s, std::size_t c) {
    const std::size_t pad = widths[c] - s.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << s;
    else os << s << std::string(pad, ' ');
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      emit_cell(row[c], c);
    }
    os << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::render_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (char ch : s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_rate_bps(double bps) {
  char buf[64];
  if (bps >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f Gbps", bps / 1e9);
  } else if (bps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f Mbps", bps / 1e6);
  } else if (bps >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f Kbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f bps", bps);
  }
  return buf;
}

std::string fmt_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace rp::util

#include "util/sim_time.hpp"

#include <cmath>
#include <cstdio>

namespace rp::util {

SimDuration SimDuration::from_millis_f(double ms) {
  return SimDuration::nanos(static_cast<std::int64_t>(std::llround(ms * 1e6)));
}

SimDuration SimDuration::from_seconds_f(double s) {
  return SimDuration::nanos(static_cast<std::int64_t>(std::llround(s * 1e9)));
}

std::string SimDuration::to_string() const {
  char buf[64];
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns < 1'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  } else if (abs_ns < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns_) / 1e3);
  } else if (abs_ns < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

}  // namespace rp::util

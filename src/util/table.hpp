// Plain-text table rendering for the bench harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as rows
// of text; this renderer keeps the output aligned and also emits CSV so the
// series can be re-plotted.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace rp::util {

/// Column alignment for TextTable rendering.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows of strings, render aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Sets the alignment for one column (default: left for the first column,
  /// right for the rest — the common "name, numbers..." layout).
  void set_align(std::size_t column, Align align);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Renders with a header rule, e.g.
  ///   IXP      | members | remote
  ///   ---------+---------+-------
  ///   AMS-IX   |     638 |     41
  void render(std::ostream& os) const;

  /// Renders as RFC-4180-style CSV (quotes cells containing comma/quote/NL).
  void render_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt_double(double v, int digits = 2);

/// Formats a traffic rate in adaptive units (bps/Kbps/Mbps/Gbps).
std::string fmt_rate_bps(double bps);

/// Formats a fraction as a percentage with one decimal, e.g. "27.3%".
std::string fmt_percent(double fraction);

}  // namespace rp::util

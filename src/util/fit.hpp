// Least-squares fitting helpers for the economic model (§5).
//
// The paper fits the RedIRIS offload data to exponential decay,
// t = exp(-b * k) where k is the number of reached IXPs (eq. 3). We provide a
// general linear least-squares fit and an exponential-decay fit built on it
// (log-linearization), plus goodness-of-fit so the ablation bench can report
// how well the exponential model matches the simulated curve.
#pragma once

#include <cstddef>
#include <vector>

namespace rp::util {

/// Result of fitting y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 = perfect fit).
  double r_squared = 0.0;
};

/// Ordinary least squares on (x, y) pairs. Requires >= 2 points and
/// non-constant x; throws std::invalid_argument otherwise.
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Result of fitting y = amplitude * exp(-decay * x).
struct ExponentialDecayFit {
  double amplitude = 0.0;
  double decay = 0.0;  ///< The paper's parameter b (eq. 3).
  /// R^2 of the underlying log-linear fit.
  double r_squared = 0.0;

  double evaluate(double x) const;
};

/// Fits y = A * exp(-b x) by linear regression on log(y). All y must be
/// strictly positive; throws std::invalid_argument otherwise.
ExponentialDecayFit fit_exponential_decay(const std::vector<double>& x,
                                          const std::vector<double>& y);

}  // namespace rp::util

// A compact dynamic bitset.
//
// The offload analysis works with coverage sets — "which transit endpoints
// does peering at IXP X cover?" — over a few thousand networks, unioned and
// differenced repeatedly inside a greedy loop. A word-packed bitset keeps
// that loop cache-friendly.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace rp::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  // The per-bit accessors sit inside the greedy loop's innermost scans, so
  // bounds are asserted in debug builds only; callers own the range.
  void set(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  bool test(std::size_t i) const {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }
  bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }
  bool none() const { return !any(); }

  DynamicBitset& operator|=(const DynamicBitset& other) {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  DynamicBitset& operator&=(const DynamicBitset& other) {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  /// Removes the bits set in `other` (set difference).
  DynamicBitset& subtract(const DynamicBitset& other) {
    check_same(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
    return *this;
  }

  /// Number of bits set in (*this & other) without materializing it.
  std::size_t intersection_count(const DynamicBitset& other) const {
    check_same(other);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      n += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    return n;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Calls fn(index) for every bit set in (*this & other), ascending,
  /// without materializing the intersection.
  template <typename Fn>
  void for_each_intersection(const DynamicBitset& other, Fn&& fn) const {
    check_same(other);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w] & other.words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  bool operator==(const DynamicBitset&) const = default;

  /// The packed word storage, for serialization (rp::io snapshots).
  std::span<const std::uint64_t> words() const { return words_; }

  /// Rebuilds a bitset from packed words (the inverse of words()). Throws
  /// std::invalid_argument if the word count does not match `bits` or any
  /// bit beyond `bits` is set.
  static DynamicBitset from_words(std::size_t bits,
                                  std::vector<std::uint64_t> words) {
    if (words.size() != (bits + 63) / 64)
      throw std::invalid_argument("DynamicBitset::from_words: word count");
    if (bits % 64 != 0 && !words.empty() &&
        (words.back() >> (bits % 64)) != 0)
      throw std::invalid_argument(
          "DynamicBitset::from_words: stray bits beyond size");
    DynamicBitset out;
    out.bits_ = bits;
    out.words_ = std::move(words);
    return out;
  }

 private:
  void check_same(const DynamicBitset& other) const {
    if (bits_ != other.bits_)
      throw std::invalid_argument("DynamicBitset: size mismatch");
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rp::util

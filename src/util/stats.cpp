#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rp::util {

std::optional<Summary> summarize(const std::vector<double>& values) {
  if (values.empty()) return std::nullopt;
  Summary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.variance = sq / static_cast<double>(s.count);
  s.stddev = std::sqrt(s.variance);
  return s;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 100.0)
    throw std::invalid_argument("percentile: q out of [0,100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

double p95_billing_rate(std::vector<double> five_minute_rates) {
  if (five_minute_rates.empty())
    throw std::invalid_argument("p95_billing_rate: empty sample");
  std::sort(five_minute_rates.begin(), five_minute_rates.end());
  // Operator convention: discard the top 5% of samples, bill at the largest
  // remaining one (nearest-rank).
  const std::size_t n = five_minute_rates.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return five_minute_rates[rank - 1];
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values)
    : sorted_(std::move(values)) {
  if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("EmpiricalCdf::quantile: q out of [0,1]");
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::steps() const {
  std::vector<Point> out;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.push_back({sorted_[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: invalid range or bin count");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // FP edge at hi_.
  ++counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace rp::util

// Descriptive statistics used throughout the measurement and traffic studies:
// percentiles (including the 95th-percentile transit-billing rule of §2.1),
// empirical CDFs (Fig. 2), and simple summaries.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace rp::util {

/// Summary of a sample: count, min/max, mean, (population) variance.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
};

/// Computes a Summary; returns nullopt for an empty sample.
std::optional<Summary> summarize(const std::vector<double>& values);

/// Linear-interpolation percentile (like numpy's default). `q` in [0, 100].
/// Throws std::invalid_argument on empty input or q out of range.
double percentile(std::vector<double> values, double q);

/// The 95th-percentile rule used for transit billing (§2.1): the charge is
/// per-Mbps price times the 95th percentile of the 5-minute traffic rates.
/// Uses the operator convention of discarding the top 5% of samples, i.e.
/// nearest-rank at ceil(0.95 * n).
double p95_billing_rate(std::vector<double> five_minute_rates);

/// An empirical CDF over a fixed sample, queryable at arbitrary x and
/// renderable as (x, F(x)) steps — used for Fig. 2's minimum-RTT CDF.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> values);

  /// Fraction of samples <= x.
  double at(double x) const;
  /// The q-quantile (q in [0,1]), by linear interpolation.
  double quantile(double q) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_values() const { return sorted_; }

  /// Evaluation points suitable for plotting: one (value, cumulative
  /// fraction) pair per distinct sample value.
  struct Point {
    double value;
    double fraction;
  };
  std::vector<Point> steps() const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus an overflow
/// and underflow count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace rp::util

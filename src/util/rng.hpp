// Deterministic pseudo-random number generation and the distributions used by
// the synthetic Internet substrate.
//
// Everything in this library is seeded: rebuilding a scenario from the same
// seed yields a bit-identical world, which makes experiments and tests
// reproducible. We use xoshiro256** (public domain, Blackman & Vigna) seeded
// via SplitMix64 rather than std::mt19937 so that results are stable across
// standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace rp::util {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (mean = 1/lambda). Requires mean > 0.
  double exponential(double mean);
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Pareto with scale x_min > 0 and shape alpha > 0 (P[X > x] = (x_min/x)^alpha).
  double pareto(double x_min, double alpha);

  /// Derives an independent child generator; stable given the same label.
  Rng fork(std::uint64_t label);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Zipf-distributed integers over {1, ..., n} with exponent s, sampled by
/// inverting a precomputed CDF. Heavy-tailed popularity is ubiquitous in
/// Internet traffic; the paper's per-network traffic contributions (Fig. 5a)
/// follow such a tail.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [1, n]; rank 1 is the most popular.
  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double exponent() const { return s_; }

 private:
  std::vector<double> cdf_;
  double s_;
};

/// Double-Pareto traffic-volume sampler: the body follows one power law and
/// the tail beyond `knee_rank` falls faster. Fig. 5a of the paper shows this
/// "bend" around network rank ~20,000, where individual contributions start
/// declining faster; this sampler reproduces that qualitative profile.
class DoubleParetoSampler {
 public:
  /// `head_alpha` shapes ranks [1, knee], `tail_alpha` (> head_alpha) shapes
  /// the ranks beyond; `scale` is the volume of rank 1.
  DoubleParetoSampler(double scale, double head_alpha, double tail_alpha,
                      std::size_t knee_rank);

  /// Deterministic volume for a given 1-based rank (the rank-size law).
  double volume_at_rank(std::size_t rank) const;

 private:
  double scale_;
  double head_alpha_;
  double tail_alpha_;
  std::size_t knee_rank_;
  double knee_volume_;
};

}  // namespace rp::util

// Small string helpers shared across modules (parsing of dotted-quad
// addresses, rendering of identifiers, etc.).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rp::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` consists only of decimal digits (and is non-empty).
bool is_all_digits(std::string_view s);

/// Parses a non-negative decimal integer; returns false on overflow or
/// non-digit input.
bool parse_u32(std::string_view s, unsigned long& out);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

}  // namespace rp::util

// Simulated time as a nanosecond fixed-point value.
//
// The library never reads the wall clock; all timestamps — probe send times,
// RTTs, NetFlow bin boundaries — are SimTime/SimDuration values driven by the
// discrete-event simulator. Using integer nanoseconds keeps arithmetic exact
// and ordering total, which matters for event-queue determinism.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rp::util {

/// A span of simulated time. Signed so that differences are representable.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration nanos(std::int64_t n) { return SimDuration{n}; }
  static constexpr SimDuration micros(std::int64_t n) {
    return SimDuration{n * 1'000};
  }
  static constexpr SimDuration millis(std::int64_t n) {
    return SimDuration{n * 1'000'000};
  }
  static constexpr SimDuration seconds(std::int64_t n) {
    return SimDuration{n * 1'000'000'000};
  }
  static constexpr SimDuration minutes(std::int64_t n) {
    return seconds(n * 60);
  }
  static constexpr SimDuration hours(std::int64_t n) { return minutes(n * 60); }
  static constexpr SimDuration days(std::int64_t n) { return hours(n * 24); }
  /// From a floating-point count of milliseconds (rounds to nearest ns).
  static SimDuration from_millis_f(double ms);
  /// From a floating-point count of seconds (rounds to nearest ns).
  static SimDuration from_seconds_f(double s);

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr double as_millis_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double as_seconds_f() const {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration{ns_ + o.ns_};
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration{ns_ - o.ns_};
  }
  constexpr SimDuration operator-() const { return SimDuration{-ns_}; }
  constexpr SimDuration operator*(std::int64_t k) const {
    return SimDuration{ns_ * k};
  }
  constexpr SimDuration operator/(std::int64_t k) const {
    return SimDuration{ns_ / k};
  }
  SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }

  /// Human-readable rendering with an adaptive unit (ns/us/ms/s).
  std::string to_string() const;

 private:
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulated timeline (ns since scenario start).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime origin() { return SimTime{}; }
  static constexpr SimTime at(SimDuration since_origin) {
    return SimTime{since_origin.count_nanos()};
  }

  constexpr std::int64_t count_nanos() const { return ns_; }
  constexpr SimDuration since_origin() const {
    return SimDuration::nanos(ns_);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime{ns_ + d.count_nanos()};
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime{ns_ - d.count_nanos()};
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::nanos(ns_ - o.ns_);
  }
  SimTime& operator+=(SimDuration d) {
    ns_ += d.count_nanos();
    return *this;
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace rp::util

#include "util/thread_pool.hpp"

#include <cstdlib>
#include <memory>
#include <string>

namespace rp::util {
namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  threads_ = threads == 0 ? configured_threads() : threads;
  if (threads_ <= 1) {
    threads_ = 1;
    return;  // Inline mode: no workers, parallel_for runs on the caller.
  }
  workers_.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::configured_threads() {
  if (const char* value = std::getenv("RP_THREADS");
      value != nullptr && value[0] != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && parsed >= 1)
      return static_cast<unsigned>(std::min(parsed, 512L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::scoped_lock lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(unsigned threads) {
  std::scoped_lock lock(g_global_mutex);
  g_global_pool.reset();
  if (threads != 0) g_global_pool = std::make_unique<ThreadPool>(threads);
}

bool& ThreadPool::worker_flag() {
  thread_local bool flag = false;
  return flag;
}

void ThreadPool::worker_loop() {
  worker_flag() = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rp::util

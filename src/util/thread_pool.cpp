#include "util/thread_pool.hpp"

#include <cstdlib>
#include <memory>
#include <string>

#include "fault/fault.hpp"

namespace rp::util {
namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

// The pool.task injection site: fires per claimed index on a worker, inside
// the same try block as the task body, so an injected fault takes exactly
// the path a throwing task takes — recorded on the batch, rethrown to the
// submitting caller, never a deadlock or a leaked batch.
rp::fault::Site& pool_task_site() {
  static rp::fault::Site site(rp::fault::kSitePoolTask);
  return site;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  threads_ = threads == 0 ? configured_threads() : threads;
  if (threads_ <= 1) {
    threads_ = 1;
    return;  // Inline mode: no workers, parallel_for runs on the caller.
  }
  workers_.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::configured_threads() {
  if (const char* value = std::getenv("RP_THREADS");
      value != nullptr && value[0] != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end != value && *end == '\0' && parsed >= 1)
      return static_cast<unsigned>(std::min(parsed, 512L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::scoped_lock lock(g_global_mutex);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::set_global_threads(unsigned threads) {
  std::scoped_lock lock(g_global_mutex);
  g_global_pool.reset();
  if (threads != 0) g_global_pool = std::make_unique<ThreadPool>(threads);
}

bool& ThreadPool::worker_flag() {
  thread_local bool flag = false;
  return flag;
}

fault::Site& ThreadPool::task_site() { return pool_task_site(); }

// Deterministic work counters: the number of parallel_for calls and the
// total index space are properties of the workload, not the schedule, so
// they also count the inline paths.
void ThreadPool::note_parallel_for(std::size_t n) {
  static obs::Counter calls("rp.pool.parallel_for.calls");
  static obs::Counter items("rp.pool.items");
  calls.add(1);
  items.add(n);
}

void ThreadPool::submit_and_wait(Batch* batch) {
  if (obs::metrics_enabled()) batch->enqueue_ns = obs::monotonic_ns();
  {
    std::scoped_lock lock(queue_mutex_);
    queue_.push_back(batch);
  }
  queue_cv_.notify_all();
  std::unique_lock lock(batch->mutex);
  batch->done.wait(lock, [batch] { return batch->pending == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::run_batch(Batch* batch) {
  const bool metrics = obs::metrics_enabled();
  std::uint64_t start_ns = 0;
  if (metrics) {
    start_ns = obs::monotonic_ns();
    // How many workers entered batches, and how long batches sat queued —
    // both depend on scheduling, hence the kScheduling tag.
    static obs::Counter tasks("rp.pool.tasks", obs::Stability::kScheduling);
    static obs::Histogram queue_wait("rp.pool.queue_wait_ns");
    tasks.add(1);
    if (batch->enqueue_ns != 0) queue_wait.record(start_ns - batch->enqueue_ns);
  }
  for (std::size_t i = batch->next.fetch_add(1); i < batch->n;
       i = batch->next.fetch_add(1)) {
    try {
      pool_task_site().maybe_throw();
      batch->invoke(batch->ctx, i);
    } catch (...) {
      std::scoped_lock lock(batch->mutex);
      if (!batch->error) batch->error = std::current_exception();
    }
  }
  if (metrics) {
    static obs::Counter busy("rp.pool.busy_ns", obs::Stability::kScheduling);
    busy.add(obs::monotonic_ns() - start_ns);
  }
  // The notify must happen under the lock: once pending hits zero the
  // caller may wake and destroy the stack-resident batch.
  std::scoped_lock lock(batch->mutex);
  if (--batch->pending == 0) batch->done.notify_all();
}

void ThreadPool::worker_loop() {
  worker_flag() = true;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      batch = queue_.front();
      // Keep the batch at the front until its full complement of workers has
      // entered: every entrant must decrement pending exactly once or the
      // submitting caller would wait forever.
      if (++batch->entered >= batch->tasks) queue_.pop_front();
    }
    run_batch(batch);
  }
}

}  // namespace rp::util

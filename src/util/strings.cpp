#include "util/strings.hpp"

#include <cctype>

namespace rp::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

bool is_all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  return true;
}

bool parse_u32(std::string_view s, unsigned long& out) {
  if (!is_all_digits(s)) return false;
  unsigned long value = 0;
  for (char c : s) {
    const unsigned digit = static_cast<unsigned>(c - '0');
    if (value > (0xFFFFFFFFUL - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace rp::util

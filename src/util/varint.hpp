// The shared varint codec: unsigned LEB128 plus zigzag, used by both the
// rp::io snapshot container (ByteWriter/ByteReader) and the rp::serve wire
// protocol — one serialization primitive for files and for RPC frames.
//
// Encoding appends to a caller-owned byte vector. Decoding is non-throwing
// and incremental: it reports how many bytes a value consumed and whether
// the input was merely too short (kTruncated — feed more bytes and retry,
// which is exactly what a socket frame parser needs) or malformed
// (kOverflow — the value cannot fit in 64 bits). Callers map those statuses
// onto their own error types (SnapshotError for snapshots, a protocol error
// for serve frames).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rp::util {

/// A varint may occupy at most 10 bytes (ceil(64 / 7)).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends the unsigned LEB128 encoding of `v` to `out`.
inline void varint_encode(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Zigzag-codes a signed value so small magnitudes stay small when
/// LEB128-encoded (0, -1, 1, -2, ... -> 0, 1, 2, 3, ...).
inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of zigzag_encode.
inline constexpr std::int64_t zigzag_decode(std::uint64_t z) {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/// Why a decode did not produce a value.
enum class VarintStatus : std::uint8_t {
  kOk,         ///< `value` and `consumed` are valid.
  kTruncated,  ///< Ran out of input mid-value; more bytes may complete it.
  kOverflow,   ///< The encoding does not fit 64 bits (or exceeds 10 bytes).
};

/// Result of varint_decode. On kTruncated/kOverflow, value and consumed are 0.
struct VarintResult {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
  VarintStatus status = VarintStatus::kOk;
};

/// Decodes one unsigned LEB128 value from the front of `data`.
inline VarintResult varint_decode(std::span<const std::uint8_t> data) {
  std::uint64_t v = 0;
  std::size_t i = 0;
  for (int shift = 0; shift < 64; shift += 7, ++i) {
    if (i >= data.size()) return {0, 0, VarintStatus::kTruncated};
    const std::uint8_t byte = data[i];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The tenth byte may only contribute the single top bit.
      if (shift == 63 && (byte & 0x7E) != 0)
        return {0, 0, VarintStatus::kOverflow};
      return {v, i + 1, VarintStatus::kOk};
    }
  }
  return {0, 0, VarintStatus::kOverflow};  // Longer than 10 bytes.
}

}  // namespace rp::util

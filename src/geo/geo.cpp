#include "geo/geo.hpp"

#include <cmath>

namespace rp::geo {
namespace {

constexpr double kEarthRadiusM = 6'371'008.8;  // Mean Earth radius (IUGG).
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

}  // namespace

double great_circle_distance_m(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.latitude_deg * kDegToRad;
  const double lat2 = b.latitude_deg * kDegToRad;
  const double dlat = (b.latitude_deg - a.latitude_deg) * kDegToRad;
  const double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

util::SimDuration propagation_delay(const GeoPoint& a, const GeoPoint& b,
                                    double path_stretch) {
  return propagation_delay_for_distance(great_circle_distance_m(a, b) *
                                        path_stretch);
}

util::SimDuration propagation_delay_for_distance(double distance_m) {
  const double seconds =
      distance_m / (kSpeedOfLightMps * kFiberVelocityFactor);
  return util::SimDuration::from_seconds_f(seconds);
}

std::string to_string(Continent c) {
  switch (c) {
    case Continent::kAfrica: return "Africa";
    case Continent::kAsia: return "Asia";
    case Continent::kEurope: return "Europe";
    case Continent::kNorthAmerica: return "North America";
    case Continent::kOceania: return "Oceania";
    case Continent::kSouthAmerica: return "South America";
  }
  return "Unknown";
}

}  // namespace rp::geo

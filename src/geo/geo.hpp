// Geography: coordinates, great-circle distances, and the fiber propagation
// delay model.
//
// The paper classifies remote peers by minimum RTT into bands that "roughly
// correspond to intercity, intercountry, and intercontinental distances"
// (10-20, 20-50, >= 50 ms). Our simulator derives layer-2 circuit latency
// from geographic distance, so those bands emerge from geography exactly as
// they do in the real measurements.
#pragma once

#include <string>

#include "util/sim_time.hpp"

namespace rp::geo {

/// Speed of light in vacuum, meters per second.
inline constexpr double kSpeedOfLightMps = 299'792'458.0;
/// Refraction slows light in fiber to roughly 2/3 c (n ~ 1.47).
inline constexpr double kFiberVelocityFactor = 2.0 / 3.0;
/// Real circuits do not follow geodesics: conduits hug roads, seabeds, and
/// rings. A path-stretch factor of ~1.4 over great-circle distance is the
/// conventional rule of thumb for terrestrial/submarine fiber routes.
inline constexpr double kDefaultPathStretch = 1.4;

/// A WGS-84 coordinate (degrees).
struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle (haversine) distance in meters over the mean Earth radius.
double great_circle_distance_m(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay over a fiber path between two points,
/// accounting for the fiber velocity factor and path stretch.
util::SimDuration propagation_delay(const GeoPoint& a, const GeoPoint& b,
                                    double path_stretch = kDefaultPathStretch);

/// One-way propagation delay for an explicit route length in meters.
util::SimDuration propagation_delay_for_distance(double distance_m);

/// A continent tag; used to report the paper's "4 continents" coverage and
/// intercontinental peering results.
enum class Continent {
  kAfrica,
  kAsia,
  kEurope,
  kNorthAmerica,
  kOceania,
  kSouthAmerica,
};

std::string to_string(Continent c);

/// A named location with coordinates, used for IXP sites, network PoPs, and
/// remote-peering-provider PoPs.
struct City {
  std::string name;
  std::string country;
  Continent continent = Continent::kEurope;
  GeoPoint position;
};

}  // namespace rp::geo

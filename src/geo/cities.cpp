#include "geo/cities.hpp"

#include <stdexcept>

namespace rp::geo {
namespace {

std::vector<City> build_world() {
  using C = Continent;
  return {
      // Cities hosting the 22 IXPs of Table 1.
      {"Amsterdam", "Netherlands", C::kEurope, {52.37, 4.90}},
      {"Frankfurt", "Germany", C::kEurope, {50.11, 8.68}},
      {"London", "UK", C::kEurope, {51.51, -0.13}},
      {"Hong Kong", "China", C::kAsia, {22.32, 114.17}},
      {"New York", "USA", C::kNorthAmerica, {40.71, -74.01}},
      {"Moscow", "Russia", C::kEurope, {55.76, 37.62}},
      {"Warsaw", "Poland", C::kEurope, {52.23, 21.01}},
      {"Paris", "France", C::kEurope, {48.86, 2.35}},
      {"Sao Paulo", "Brazil", C::kSouthAmerica, {-23.55, -46.63}},
      {"Seattle", "USA", C::kNorthAmerica, {47.61, -122.33}},
      {"Tokyo", "Japan", C::kAsia, {35.68, 139.69}},
      {"Toronto", "Canada", C::kNorthAmerica, {43.65, -79.38}},
      {"Vienna", "Austria", C::kEurope, {48.21, 16.37}},
      {"Milan", "Italy", C::kEurope, {45.46, 9.19}},
      {"Turin", "Italy", C::kEurope, {45.07, 7.69}},
      {"Stockholm", "Sweden", C::kEurope, {59.33, 18.07}},
      {"Seoul", "South Korea", C::kAsia, {37.57, 126.98}},
      {"Buenos Aires", "Argentina", C::kSouthAmerica, {-34.60, -58.38}},
      {"Dublin", "Ireland", C::kEurope, {53.35, -6.26}},
      // Cities from the paper's §4 offload study and validation cases.
      {"Miami", "USA", C::kNorthAmerica, {25.76, -80.19}},
      {"Madrid", "Spain", C::kEurope, {40.42, -3.70}},
      {"Barcelona", "Spain", C::kEurope, {41.39, 2.17}},
      {"Padua", "Italy", C::kEurope, {45.41, 11.88}},
      {"Lyon", "France", C::kEurope, {45.76, 4.84}},
      {"Budapest", "Hungary", C::kEurope, {47.50, 19.04}},   // Invitel.
      {"Ankara", "Turkey", C::kAsia, {39.93, 32.86}},        // Turk Telecom.
      // Additional European cities for synthetic networks and Euro-IX sites.
      {"Berlin", "Germany", C::kEurope, {52.52, 13.41}},
      {"Munich", "Germany", C::kEurope, {48.14, 11.58}},
      {"Zurich", "Switzerland", C::kEurope, {47.37, 8.54}},
      {"Geneva", "Switzerland", C::kEurope, {46.20, 6.14}},
      {"Brussels", "Belgium", C::kEurope, {50.85, 4.35}},
      {"Copenhagen", "Denmark", C::kEurope, {55.68, 12.57}},
      {"Oslo", "Norway", C::kEurope, {59.91, 10.75}},
      {"Helsinki", "Finland", C::kEurope, {60.17, 24.94}},
      {"Prague", "Czech Republic", C::kEurope, {50.08, 14.44}},
      {"Bratislava", "Slovakia", C::kEurope, {48.15, 17.11}},
      {"Bucharest", "Romania", C::kEurope, {44.43, 26.10}},
      {"Sofia", "Bulgaria", C::kEurope, {42.70, 23.32}},
      {"Athens", "Greece", C::kEurope, {37.98, 23.73}},
      {"Rome", "Italy", C::kEurope, {41.90, 12.50}},
      {"Lisbon", "Portugal", C::kEurope, {38.72, -9.14}},
      {"Kyiv", "Ukraine", C::kEurope, {50.45, 30.52}},
      {"Riga", "Latvia", C::kEurope, {56.95, 24.11}},
      {"Manchester", "UK", C::kEurope, {53.48, -2.24}},
      {"Edinburgh", "UK", C::kEurope, {55.95, -3.19}},
      {"Marseille", "France", C::kEurope, {43.30, 5.37}},
      {"Luxembourg", "Luxembourg", C::kEurope, {49.61, 6.13}},
      // North America.
      {"Ashburn", "USA", C::kNorthAmerica, {39.04, -77.49}},
      {"Chicago", "USA", C::kNorthAmerica, {41.88, -87.63}},
      {"Dallas", "USA", C::kNorthAmerica, {32.78, -96.80}},
      {"Los Angeles", "USA", C::kNorthAmerica, {34.05, -118.24}},
      {"San Jose", "USA", C::kNorthAmerica, {37.34, -121.89}},
      {"Atlanta", "USA", C::kNorthAmerica, {33.75, -84.39}},
      {"Denver", "USA", C::kNorthAmerica, {39.74, -104.99}},
      {"Montreal", "Canada", C::kNorthAmerica, {45.50, -73.57}},
      {"Vancouver", "Canada", C::kNorthAmerica, {49.28, -123.12}},
      {"Mexico City", "Mexico", C::kNorthAmerica, {19.43, -99.13}},
      // South America.
      {"Rio de Janeiro", "Brazil", C::kSouthAmerica, {-22.91, -43.17}},
      {"Porto Alegre", "Brazil", C::kSouthAmerica, {-30.03, -51.22}},
      {"Curitiba", "Brazil", C::kSouthAmerica, {-25.43, -49.27}},
      {"Santiago", "Chile", C::kSouthAmerica, {-33.45, -70.67}},
      {"Bogota", "Colombia", C::kSouthAmerica, {4.71, -74.07}},
      {"Lima", "Peru", C::kSouthAmerica, {-12.05, -77.04}},
      {"Caracas", "Venezuela", C::kSouthAmerica, {10.48, -66.90}},
      // Asia & Oceania.
      {"Singapore", "Singapore", C::kAsia, {1.35, 103.82}},
      {"Taipei", "Taiwan", C::kAsia, {25.03, 121.57}},
      {"Osaka", "Japan", C::kAsia, {34.69, 135.50}},
      {"Mumbai", "India", C::kAsia, {19.08, 72.88}},
      {"Jakarta", "Indonesia", C::kAsia, {-6.21, 106.85}},
      {"Kuala Lumpur", "Malaysia", C::kAsia, {3.14, 101.69}},
      {"Bangkok", "Thailand", C::kAsia, {13.76, 100.50}},
      {"Manila", "Philippines", C::kAsia, {14.60, 120.98}},
      {"Dubai", "UAE", C::kAsia, {25.20, 55.27}},
      {"Tel Aviv", "Israel", C::kAsia, {32.09, 34.78}},
      {"Sydney", "Australia", C::kOceania, {-33.87, 151.21}},
      {"Auckland", "New Zealand", C::kOceania, {-36.85, 174.76}},
      // Africa — the paper's §5 discusses remote peering economics there.
      {"Johannesburg", "South Africa", C::kAfrica, {-26.20, 28.05}},
      {"Cape Town", "South Africa", C::kAfrica, {-33.92, 18.42}},
      {"Nairobi", "Kenya", C::kAfrica, {-1.29, 36.82}},
      {"Lagos", "Nigeria", C::kAfrica, {6.52, 3.38}},
      {"Cairo", "Egypt", C::kAfrica, {30.04, 31.24}},
      {"Accra", "Ghana", C::kAfrica, {5.60, -0.19}},
  };
}

}  // namespace

CityRegistry::CityRegistry(std::vector<City> cities)
    : cities_(std::move(cities)) {}

const CityRegistry& CityRegistry::world() {
  static const CityRegistry registry{build_world()};
  return registry;
}

std::optional<City> CityRegistry::find(const std::string& name) const {
  for (const auto& c : cities_)
    if (c.name == name) return c;
  return std::nullopt;
}

const City& CityRegistry::at(const std::string& name) const {
  for (const auto& c : cities_)
    if (c.name == name) return c;
  throw std::out_of_range("CityRegistry: unknown city " + name);
}

std::vector<City> CityRegistry::on_continent(Continent continent) const {
  std::vector<City> out;
  for (const auto& c : cities_)
    if (c.continent == continent) out.push_back(c);
  return out;
}

}  // namespace rp::geo

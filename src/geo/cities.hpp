// A registry of world cities used to place IXPs, member-network PoPs, and
// remote-peering-provider PoPs.
//
// The registry covers every city hosting one of the 22 IXPs of the paper's
// Table 1, the extra locations that appear in its §4 Euro-IX analysis (e.g.
// Miami for Terremark), and enough additional cities on all continents for
// the topology generator to spread synthetic networks realistically.
#pragma once

#include <optional>
#include <vector>

#include "geo/geo.hpp"

namespace rp::geo {

/// Immutable world city registry with lookup by name.
class CityRegistry {
 public:
  /// The built-in world registry (see cities.cpp for the full list).
  static const CityRegistry& world();

  /// Case-sensitive lookup by city name; nullopt if absent.
  std::optional<City> find(const std::string& name) const;
  /// As find(), but throws std::out_of_range for unknown cities.
  const City& at(const std::string& name) const;

  const std::vector<City>& all() const { return cities_; }
  /// All cities on a given continent.
  std::vector<City> on_continent(Continent c) const;

  explicit CityRegistry(std::vector<City> cities);

 private:
  std::vector<City> cities_;
};

}  // namespace rp::geo

#include "measure/filters.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "obs/metrics.hpp"

namespace rp::measure {
namespace {

// One discard counter per filter rule, named after to_string(Filter) so the
// metrics table reads like the paper's §3.2 filter cascade.
obs::Counter& discard_counter(std::size_t filter_index) {
  static obs::Counter counters[kFilterCount] = {
      obs::Counter("rp.measure.discard.sample-size"),
      obs::Counter("rp.measure.discard.TTL-switch"),
      obs::Counter("rp.measure.discard.TTL-match"),
      obs::Counter("rp.measure.discard.RTT-consistent"),
      obs::Counter("rp.measure.discard.LG-consistent"),
      obs::Counter("rp.measure.discard.ASN-change"),
  };
  return counters[filter_index];
}

bool ttl_accepted(std::uint8_t ttl, const FilterConfig& config) {
  return std::find(config.accepted_max_ttls.begin(),
                   config.accepted_max_ttls.end(),
                   ttl) != config.accepted_max_ttls.end();
}

util::SimDuration consistency_margin(util::SimDuration min_rtt,
                                     const FilterConfig& config) {
  const auto fractional = util::SimDuration::from_seconds_f(
      min_rtt.as_seconds_f() * config.consistency_fraction);
  return std::max(config.consistency_floor, fractional);
}

}  // namespace

std::string to_string(Filter f) {
  switch (f) {
    case Filter::kSampleSize: return "sample-size";
    case Filter::kTtlSwitch: return "TTL-switch";
    case Filter::kTtlMatch: return "TTL-match";
    case Filter::kRttConsistent: return "RTT-consistent";
    case Filter::kLgConsistent: return "LG-consistent";
    case Filter::kAsnChange: return "ASN-change";
  }
  return "unknown";
}

std::size_t IxpAnalysis::analyzed_count() const {
  return static_cast<std::size_t>(
      std::count_if(interfaces.begin(), interfaces.end(),
                    [](const InterfaceAnalysis& a) { return a.analyzed(); }));
}

InterfaceAnalysis analyze_interface(const InterfaceObservation& obs,
                                    const FilterConfig& config) {
  InterfaceAnalysis analysis;
  analysis.addr = obs.addr;
  analysis.ixp_id = obs.ixp_id;
  analysis.asn = obs.registry_asn_final();
  analysis.truth_remote = obs.truth_remote;
  analysis.truth_kind = obs.truth_kind;
  analysis.truth_circuit_one_way = obs.truth_circuit_one_way;
  for (const auto& sample : obs.route_server_samples) {
    if (!sample.replied) continue;
    if (!analysis.route_server_min_rtt ||
        sample.rtt < *analysis.route_server_min_rtt)
      analysis.route_server_min_rtt = sample.rtt;
  }

  // --- Filter 1: sample-size ---------------------------------------------
  // Each probing LG must have produced enough replies on its own; an LG
  // that probed and saw (almost) nothing signals blackholing or a stale
  // registry address.
  if (config.is_enabled(Filter::kSampleSize)) {
    if (obs.samples.empty()) {
      analysis.discarded_by = Filter::kSampleSize;
      return analysis;
    }
    for (const auto& [op, list] : obs.samples) {
      const auto replies = static_cast<int>(
          std::count_if(list.begin(), list.end(),
                        [](const PingSample& s) { return s.replied; }));
      if (replies < config.min_replies_per_lg) {
        analysis.discarded_by = Filter::kSampleSize;
        return analysis;
      }
    }
  }

  // --- Filter 2: TTL-switch ----------------------------------------------
  if (config.is_enabled(Filter::kTtlSwitch)) {
    std::set<std::uint8_t> distinct;
    for (const auto& [op, list] : obs.samples)
      for (const auto& s : list)
        if (s.replied) distinct.insert(s.reply_ttl);
    if (distinct.size() > 1) {
      analysis.discarded_by = Filter::kTtlSwitch;
      return analysis;
    }
  }

  // --- Filter 3: TTL-match -----------------------------------------------
  // Keep only replies whose TTL equals an expected OS maximum; if nothing
  // remains the interface is dropped.
  std::map<ixp::LgOperator, std::vector<const PingSample*>> accepted;
  for (const auto& [op, list] : obs.samples) {
    for (const auto& s : list) {
      if (!s.replied) continue;
      if (config.is_enabled(Filter::kTtlMatch) &&
          !ttl_accepted(s.reply_ttl, config))
        continue;
      accepted[op].push_back(&s);
    }
  }
  if (config.is_enabled(Filter::kTtlMatch)) {
    bool any = false;
    for (const auto& [op, list] : accepted) any = any || !list.empty();
    if (!any) {
      analysis.discarded_by = Filter::kTtlMatch;
      return analysis;
    }
  }

  // Minimum RTT over accepted replies, overall and per LG.
  auto min_over = [](const std::vector<const PingSample*>& list) {
    util::SimDuration best =
        util::SimDuration::nanos(std::numeric_limits<std::int64_t>::max());
    for (const PingSample* s : list) best = std::min(best, s->rtt);
    return best;
  };
  util::SimDuration overall_min =
      util::SimDuration::nanos(std::numeric_limits<std::int64_t>::max());
  std::size_t accepted_total = 0;
  for (const auto& [op, list] : accepted) {
    if (list.empty()) continue;
    overall_min = std::min(overall_min, min_over(list));
    accepted_total += list.size();
  }
  if (accepted_total == 0) {
    // Only reachable when both sample-size and TTL-match are disabled.
    analysis.discarded_by = Filter::kSampleSize;
    return analysis;
  }
  analysis.min_rtt = overall_min;
  analysis.accepted_replies = accepted_total;

  // --- Filter 4: RTT-consistent ------------------------------------------
  if (config.is_enabled(Filter::kRttConsistent)) {
    const util::SimDuration cutoff =
        overall_min + consistency_margin(overall_min, config);
    int consistent = 0;
    for (const auto& [op, list] : accepted)
      for (const PingSample* s : list)
        if (s->rtt <= cutoff) ++consistent;
    if (consistent < config.min_consistent_replies) {
      analysis.discarded_by = Filter::kRttConsistent;
      return analysis;
    }
  }

  // --- Filter 5: LG-consistent -------------------------------------------
  if (config.is_enabled(Filter::kLgConsistent) && accepted.size() >= 2) {
    std::vector<util::SimDuration> minima;
    for (const auto& [op, list] : accepted)
      if (!list.empty()) minima.push_back(min_over(list));
    if (minima.size() >= 2) {
      const auto [small_it, large_it] =
          std::minmax_element(minima.begin(), minima.end());
      if (*large_it > *small_it + consistency_margin(*small_it, config)) {
        analysis.discarded_by = Filter::kLgConsistent;
        return analysis;
      }
    }
  }

  // --- Filter 6: ASN-change ----------------------------------------------
  if (config.is_enabled(Filter::kAsnChange)) {
    std::set<net::Asn> distinct;
    for (const auto& [when, asn] : obs.registry_asn) distinct.insert(asn);
    if (distinct.size() > 1) {
      analysis.discarded_by = Filter::kAsnChange;
      return analysis;
    }
  }

  return analysis;
}

IxpAnalysis apply_filters(const IxpMeasurement& measurement,
                          const FilterConfig& config) {
  IxpAnalysis out;
  out.ixp_id = measurement.ixp_id;
  out.ixp_acronym = measurement.ixp_acronym;
  out.interfaces.reserve(measurement.interfaces.size());
  for (const auto& obs : measurement.interfaces) {
    InterfaceAnalysis analysis = analyze_interface(obs, config);
    if (analysis.discarded_by)
      ++out.discard_counts[static_cast<std::size_t>(*analysis.discarded_by)];
    out.interfaces.push_back(std::move(analysis));
  }
  if (obs::metrics_enabled()) {
    static obs::Counter analyzed("rp.measure.interfaces.analyzed");
    std::uint64_t discarded = 0;
    for (std::size_t f = 0; f < kFilterCount; ++f) {
      discard_counter(f).add(out.discard_counts[f]);
      discarded += out.discard_counts[f];
    }
    analyzed.add(out.interfaces.size() - discarded);
  }
  return out;
}

}  // namespace rp::measure

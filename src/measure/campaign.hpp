// The probing campaign: scheduling HTML queries to looking glasses.
//
// Mirrors §3.1's measurement discipline: probes are launched as LG queries
// (one query triggers 5 echo requests on PCH servers, 3 on RIPE NCC ones),
// at most one query per minute per LG, spread across days and times of day
// over a multi-week campaign so that the minimum RTT dodges transient
// congestion. The paper capped observed replies at 54 (PCH) and 21 (RIPE)
// per interface; the default query counts land just under those caps.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ixp/ixp.hpp"
#include "measure/faults.hpp"
#include "measure/sample.hpp"
#include "measure/testbed.hpp"
#include "util/rng.hpp"

namespace rp::measure {

/// Campaign knobs.
struct CampaignConfig {
  /// Campaign length. The paper spread measurements over four months; the
  /// simulated campaign compresses to four weeks of simulated time, which
  /// preserves the day/time diversity the method needs.
  util::SimDuration length = util::SimDuration::days(28);
  /// Queries per interface from a PCH LG (5 pings each -> up to 55 replies).
  int queries_per_pch_lg = 11;
  /// Queries per interface from a RIPE NCC LG (3 pings each -> up to 21).
  int queries_per_ripe_lg = 7;
  /// Minimum spacing between queries on one LG (the overhead cap of §3.1).
  util::SimDuration per_lg_query_spacing = util::SimDuration::minutes(1);
  /// Gap between the echo requests within one query.
  util::SimDuration intra_query_gap = util::SimDuration::seconds(1);
  util::SimDuration ping_timeout = util::SimDuration::seconds(2);

  /// Also probe every interface from the IXP route server (an independent
  /// in-fabric vantage), recording cross-check samples the way the TorIX
  /// staff did for the §3.3 validation.
  bool route_server_crosscheck = false;
  /// Route-server queries per interface (3 pings each).
  int rs_queries = 8;

  TestbedConfig testbed;
  FaultPlanConfig faults;
};

/// Runs the full campaign against one IXP and returns the raw dataset.
/// Deterministic for a given (ixp, config, rng state).
IxpMeasurement run_ixp_campaign(const ixp::Ixp& ixp,
                                const CampaignConfig& config, util::Rng& rng);

/// Fans a batch of per-IXP campaigns across the global ThreadPool.
///
/// The IXP list is split into `shards` contiguous blocks; each shard runs
/// its campaigns sequentially (one Simulator per IXP, alive only while that
/// campaign runs) and the blocks execute concurrently on the pool. Every
/// campaign draws its RNG from `rng_for(ixp)` — a pure function of the IXP,
/// never of the position in the batch — so results are byte-identical at any
/// RP_THREADS, any shard width, and any submission order, and land in the
/// output vector in submission order.
class CampaignRunner {
 public:
  /// Derives a campaign RNG from the IXP alone (typically a fork of the
  /// world seed keyed on ixp.id()). Must be thread-safe and pure.
  using RngFactory = std::function<util::Rng(const ixp::Ixp&)>;

  /// Shard count from RP_SIM_SHARDS (clamped to >= 1), or 0 when unset /
  /// unparsable — the "one shard per IXP" maximum-parallelism default.
  static std::size_t configured_shards();

  /// Runs one campaign per IXP. `shards` == 0 consults RP_SIM_SHARDS; a
  /// shard count beyond the IXP count is clamped down to it.
  static std::vector<IxpMeasurement> run(const std::vector<const ixp::Ixp*>& ixps,
                                         const CampaignConfig& config,
                                         const RngFactory& rng_for,
                                         std::size_t shards = 0);
};

}  // namespace rp::measure

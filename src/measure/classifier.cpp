#include "measure/classifier.hpp"

namespace rp::measure {

std::string to_string(RttBand band) {
  switch (band) {
    case RttBand::kLocal: return "RTT < 10 ms";
    case RttBand::kIntercity: return "10 ms <= RTT < 20 ms";
    case RttBand::kIntercountry: return "20 ms <= RTT < 50 ms";
    case RttBand::kIntercontinental: return "RTT >= 50 ms";
  }
  return "unknown";
}

RttBand band_of(util::SimDuration min_rtt, const ClassifierConfig& config) {
  if (min_rtt < config.remoteness_threshold) return RttBand::kLocal;
  if (min_rtt < config.intercountry_edge) return RttBand::kIntercity;
  if (min_rtt < config.intercontinental_edge) return RttBand::kIntercountry;
  return RttBand::kIntercontinental;
}

bool is_remote(util::SimDuration min_rtt, const ClassifierConfig& config) {
  return min_rtt >= config.remoteness_threshold;
}

}  // namespace rp::measure

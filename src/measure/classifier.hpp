// Remoteness classification from minimum RTTs (§3.1, "Threshold for
// remoteness" and Fig. 3's distance bands).
//
// An analyzed interface is classified remote when its minimum RTT exceeds
// the threshold (10 ms in the paper — high enough that no directly peering
// network was ever observed above it, trading false negatives for a
// conservative estimate). Bands refine the picture: 10-20 ms ~ intercity,
// 20-50 ms ~ intercountry, >= 50 ms ~ intercontinental.
#pragma once

#include <array>
#include <string>

#include "util/sim_time.hpp"

namespace rp::measure {

/// Distance band of a minimum RTT.
enum class RttBand : std::size_t {
  kLocal = 0,             ///< [0, 10) ms — consistent with direct peering.
  kIntercity = 1,         ///< [10, 20) ms.
  kIntercountry = 2,      ///< [20, 50) ms.
  kIntercontinental = 3,  ///< [50, inf) ms.
};

inline constexpr std::size_t kBandCount = 4;

std::string to_string(RttBand band);

/// Thresholds of the classifier (defaults are the paper's).
struct ClassifierConfig {
  util::SimDuration remoteness_threshold = util::SimDuration::millis(10);
  util::SimDuration intercountry_edge = util::SimDuration::millis(20);
  util::SimDuration intercontinental_edge = util::SimDuration::millis(50);
};

/// Band of a minimum RTT under `config`.
RttBand band_of(util::SimDuration min_rtt, const ClassifierConfig& config);

/// True when the minimum RTT classifies the interface as remotely peering.
bool is_remote(util::SimDuration min_rtt, const ClassifierConfig& config);

}  // namespace rp::measure

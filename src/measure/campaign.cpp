#include "measure/campaign.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <unordered_map>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace rp::measure {
namespace {

struct QuerySlot {
  std::size_t interface_index;
  ixp::LgOperator op;
};

// campaign.probe fires per scheduled ping. A fired probe is dropped — the
// sample is simply never taken, the loss a real campaign sees when an LG
// query times out — and the §3 filters absorb the thinner data downstream.
fault::Site& probe_site() {
  static fault::Site site(fault::kSiteCampaignProbe);
  return site;
}

obs::Counter& probes_dropped() {
  static obs::Counter dropped("rp.measure.probes.dropped");
  return dropped;
}

/// True when this probe should be injected away (counting the drop).
bool drop_probe() {
  if (!probe_site().fire()) return false;
  probes_dropped().add();
  return true;
}

}  // namespace

IxpMeasurement run_ixp_campaign(const ixp::Ixp& ixp,
                                const CampaignConfig& config, util::Rng& rng) {
  const util::SimTime start = util::SimTime::origin();

  util::Rng fault_rng = rng.fork(0xFA);
  const FaultPlan faults =
      plan_faults(ixp, config.faults, start, config.length, fault_rng);

  IxpTestbed testbed(ixp, faults, config.testbed, start, config.length,
                     rng.fork(0x7B), config.route_server_crosscheck);

  IxpMeasurement measurement;
  measurement.ixp_id = ixp.id();
  measurement.ixp_acronym = ixp.acronym();
  measurement.campaign_start = start;
  measurement.campaign_length = config.length;

  // One observation per probed interface, in fabric order. Only
  // discoverable addresses are probed (§3.1 harvests targets from PeeringDB,
  // PCH, and IXP websites; unpublished interfaces are invisible to the
  // method).
  std::unordered_map<net::Ipv4Addr, std::size_t> index_of;
  for (const auto& iface : ixp.interfaces()) {
    if (!iface.discoverable) continue;
    InterfaceObservation obs;
    obs.addr = iface.addr;
    obs.ixp_id = ixp.id();
    obs.truth_remote = iface.is_remote_ground_truth();
    obs.truth_kind = iface.kind;
    obs.truth_circuit_one_way = iface.circuit_one_way;

    const InterfaceFaults fault = faults.for_address(iface.addr);
    if (!fault.unidentified) {
      obs.registry_asn.emplace_back(start, iface.asn);
      if (fault.asn_change) {
        // The registry remaps the address to another network mid-campaign.
        const net::Asn remapped{iface.asn.value() + 1'000'000};
        obs.registry_asn.emplace_back(
            start + config.length / 2, remapped);
      }
    }
    index_of.emplace(iface.addr, measurement.interfaces.size());
    measurement.interfaces.push_back(std::move(obs));
  }

  sim::Simulator& sim = testbed.simulator();

  // Schedule queries per LG: shuffled target order, evenly spaced slots with
  // per-slot jitter, honoring the one-query-per-minute cap.
  for (const auto& lg : ixp.looking_glasses()) {
    sim::Host* lg_host = testbed.lg_host(lg.op);
    if (lg_host == nullptr) continue;
    const int queries = lg.op == ixp::LgOperator::kPch
                            ? config.queries_per_pch_lg
                            : config.queries_per_ripe_lg;

    std::vector<QuerySlot> slots;
    for (std::size_t i = 0; i < ixp.interfaces().size(); ++i) {
      if (!ixp.interfaces()[i].discoverable) continue;
      for (int q = 0; q < queries; ++q) slots.push_back({i, lg.op});
    }
    rng.shuffle(slots);

    if (slots.empty()) continue;
    const double span_s = config.length.as_seconds_f();
    double spacing_s = span_s / static_cast<double>(slots.size());
    spacing_s = std::max(spacing_s, config.per_lg_query_spacing.as_seconds_f());

    for (std::size_t slot = 0; slot < slots.size(); ++slot) {
      const double jitter = rng.uniform(0.0, spacing_s * 0.25);
      const auto at =
          start + util::SimDuration::from_seconds_f(
                      static_cast<double>(slot) * spacing_s + jitter);
      const QuerySlot& q = slots[slot];
      const net::Ipv4Addr target = ixp.interfaces()[q.interface_index].addr;
      const std::size_t obs_index = index_of.at(target);

      for (int p = 0; p < lg.pings_per_query; ++p) {
        const auto ping_at = at + config.intra_query_gap * p;
        sim.schedule(ping_at, [&measurement, &sim, lg_host, target, obs_index,
                               op = q.op, timeout = config.ping_timeout] {
          if (drop_probe()) return;
          const util::SimTime sent = sim.now();
          lg_host->ping(target, timeout,
                        [&measurement, obs_index, op,
                         sent](const sim::PingOutcome& outcome) {
                          PingSample sample;
                          sample.sent_at = sent;
                          sample.replied = outcome.replied;
                          sample.rtt = outcome.rtt;
                          sample.reply_ttl = outcome.reply_ttl;
                          sample.reply_src = outcome.reply_src;
                          measurement.interfaces[obs_index]
                              .samples[op]
                              .push_back(sample);
                        });
        });
      }
    }
  }

  // Route-server cross-check probes: an independent schedule from inside
  // the fabric, recorded separately from the LG samples.
  if (config.route_server_crosscheck &&
      testbed.route_server_host() != nullptr) {
    sim::Host* rs = testbed.route_server_host();
    std::vector<std::size_t> targets;
    for (std::size_t i = 0; i < ixp.interfaces().size(); ++i)
      if (ixp.interfaces()[i].discoverable) targets.push_back(i);
    const std::size_t total_queries =
        targets.size() * static_cast<std::size_t>(config.rs_queries);
    if (total_queries > 0) {
      const double span_s = config.length.as_seconds_f();
      double spacing_s = span_s / static_cast<double>(total_queries);
      spacing_s =
          std::max(spacing_s, config.per_lg_query_spacing.as_seconds_f());
      std::vector<std::size_t> slots;
      for (std::size_t t : targets)
        for (int q = 0; q < config.rs_queries; ++q) slots.push_back(t);
      rng.shuffle(slots);
      for (std::size_t slot = 0; slot < slots.size(); ++slot) {
        const auto at =
            start + util::SimDuration::from_seconds_f(
                        static_cast<double>(slot) * spacing_s +
                        rng.uniform(0.0, spacing_s * 0.25));
        const net::Ipv4Addr target = ixp.interfaces()[slots[slot]].addr;
        const std::size_t obs_index = index_of.at(target);
        for (int p = 0; p < 3; ++p) {
          const auto ping_at = at + config.intra_query_gap * p;
          sim.schedule(ping_at, [&measurement, &sim, rs, target, obs_index,
                                 timeout = config.ping_timeout] {
            if (drop_probe()) return;
            const util::SimTime sent = sim.now();
            rs->ping(target, timeout,
                     [&measurement, obs_index,
                      sent](const sim::PingOutcome& outcome) {
                       PingSample sample;
                       sample.sent_at = sent;
                       sample.replied = outcome.replied;
                       sample.rtt = outcome.rtt;
                       sample.reply_ttl = outcome.reply_ttl;
                       sample.reply_src = outcome.reply_src;
                       measurement.interfaces[obs_index]
                           .route_server_samples.push_back(sample);
                     });
          });
        }
      }
    }
  }

  measurement.events_executed = sim.run();

  // Work counters, tallied post-hoc from the finished measurement so the
  // simulator hot path stays untouched; the totals are a pure function of
  // the campaign inputs and thus deterministic across thread counts.
  if (obs::metrics_enabled()) {
    static obs::Counter campaigns("rp.measure.campaigns");
    static obs::Counter probes("rp.measure.probes.sent");
    static obs::Counter probed("rp.measure.interfaces.probed");
    // Per-campaign event volume. Each campaign records exactly one value
    // that is a pure function of its inputs, so the bucket totals stay
    // deterministic at any RP_THREADS / RP_SIM_SHARDS.
    static obs::Histogram campaign_events("rp.sim.campaign.events",
                                          obs::Stability::kDeterministic);
    campaign_events.record(measurement.events_executed);
    std::uint64_t samples = 0;
    for (const auto& obs : measurement.interfaces) {
      for (const auto& [op, list] : obs.samples) samples += list.size();
      samples += obs.route_server_samples.size();
    }
    campaigns.add();
    probes.add(samples);
    probed.add(measurement.interfaces.size());
  }
  return measurement;
}

std::size_t CampaignRunner::configured_shards() {
  const char* raw = std::getenv("RP_SIM_SHARDS");
  if (raw == nullptr || *raw == '\0') return 0;
  std::size_t value = 0;
  const char* end = raw;
  while (*end != '\0') ++end;
  const auto [ptr, ec] = std::from_chars(raw, end, value);
  if (ec != std::errc{} || ptr != end) return 0;
  return std::max<std::size_t>(value, 1);
}

std::vector<IxpMeasurement> CampaignRunner::run(
    const std::vector<const ixp::Ixp*>& ixps, const CampaignConfig& config,
    const RngFactory& rng_for, std::size_t shards) {
  const std::size_t n = ixps.size();
  std::vector<IxpMeasurement> out(n);
  if (n == 0) return out;

  if (shards == 0) shards = configured_shards();
  if (shards == 0) shards = n;  // One shard per IXP: maximum parallelism.
  shards = std::min(shards, n);

  // Contiguous block split: shard s owns [s*n/shards, (s+1)*n/shards). The
  // split affects only which worker runs which campaign — every campaign's
  // RNG comes from rng_for(ixp) alone, so the results are identical for any
  // shard count and merge back in submission order.
  util::ThreadPool::global().parallel_for(shards, [&](std::size_t s) {
    obs::Span span("campaign.shard");
    const std::size_t begin = s * n / shards;
    const std::size_t end = (s + 1) * n / shards;
    for (std::size_t i = begin; i < end; ++i) {
      util::Rng rng = rng_for(*ixps[i]);
      out[i] = run_ixp_campaign(*ixps[i], config, rng);
    }
  });
  return out;
}

}  // namespace rp::measure

// Fault planning: which measurement artefacts afflict which interfaces.
//
// Each of the paper's six filters (§3.1) exists to defeat a specific
// real-world artefact. The planner assigns those artefacts to interfaces at
// configurable rates so that (a) every filter is load-bearing in the
// reproduction and (b) the per-filter discard counts land in the same regime
// as the paper's (20 / 82 / 20 / 100 / 28 / 5 out of ~4,700 probed).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ixp/ixp.hpp"
#include "net/ip.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace rp::measure {

/// Artefacts assigned to one interface.
struct InterfaceFaults {
  /// Interface answers no pings at all (intentional blackholing, or the
  /// registry address simply is not present in the LAN). Defeated by the
  /// sample-size filter.
  bool blackhole = false;
  /// The registry address exists but belongs to no device (stale website
  /// data): ARP never resolves. Also defeated by the sample-size filter.
  bool absent = false;
  /// OS change mid-campaign flips the initial TTL (64 <-> 255). Defeated by
  /// the TTL-switch filter.
  std::optional<util::SimTime> ttl_switch_at;
  /// The host runs an OS with an unusual initial TTL (32 or 128). Defeated
  /// by the TTL-match filter.
  std::optional<std::uint8_t> odd_initial_ttl;
  /// Replies are proxied through extra IP hops (reply arrives with a lower
  /// TTL, possibly from another address). Defeated by the TTL-match filter.
  int reply_extra_hops = 0;
  /// Port is persistently congested: no quiet samples ever. Defeated by the
  /// RTT-consistent filter.
  bool persistent_congestion = false;
  /// The path from one specific LG is persistently inflated (e.g. a sick
  /// inter-switch trunk). Defeated by the LG-consistent filter.
  std::optional<ixp::LgOperator> lg_asymmetry;
  /// The registry remaps the interface to a different ASN mid-campaign.
  /// Defeated by the ASN-change filter.
  bool asn_change = false;
  /// Registry has no ASN for this interface at all (unidentified network —
  /// the paper identifies 3,242 of 4,451 analyzed interfaces).
  bool unidentified = false;
  /// Random per-reply loss (rate limiting); thins samples without
  /// necessarily crossing the sample-size bar.
  double reply_loss = 0.0;
};

/// Assignment rates. Defaults are tuned for the Table-1-scale ecosystem
/// (~4,700 probed interfaces) to produce discard counts in the paper's
/// regime.
struct FaultPlanConfig {
  double blackhole_rate = 0.002;
  double absent_rate = 0.002;
  double ttl_switch_rate = 0.017;
  double odd_ttl_rate = 0.002;
  double proxy_reply_rate = 0.002;
  double persistent_congestion_rate = 0.021;
  double lg_asymmetry_rate = 0.006;
  double asn_change_rate = 0.001;
  double unidentified_rate = 0.27;
  double lossy_rate = 0.03;
  double lossy_reply_loss = 0.35;
};

/// Faults for every interface of one IXP, keyed by interface address.
class FaultPlan {
 public:
  void assign(net::Ipv4Addr addr, InterfaceFaults faults) {
    faults_[addr] = faults;
  }
  /// Faults for an address; a default (clean) record if none were assigned.
  InterfaceFaults for_address(net::Ipv4Addr addr) const {
    const auto it = faults_.find(addr);
    return it == faults_.end() ? InterfaceFaults{} : it->second;
  }
  std::size_t assigned_count() const { return faults_.size(); }

 private:
  std::unordered_map<net::Ipv4Addr, InterfaceFaults> faults_;
};

/// Draws a fault plan for all interfaces of `ixp`. At most one "headline"
/// artefact per interface (the paper's filters are applied in sequence, so
/// overlapping artefacts would just shift counts toward earlier filters).
FaultPlan plan_faults(const ixp::Ixp& ixp, const FaultPlanConfig& config,
                      util::SimTime campaign_start,
                      util::SimDuration campaign_length, util::Rng& rng);

}  // namespace rp::measure

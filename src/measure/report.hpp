// Aggregation of per-IXP analyses into the paper's §3 results:
// Table 1 (analyzed interfaces per IXP), Fig. 2 (min-RTT CDF), Fig. 3
// (per-IXP band classification), Fig. 4a (IXP-count distributions), Fig. 4b
// (band mix by IXP count), and the §3.3 validation against ground truth.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "measure/classifier.hpp"
#include "measure/filters.hpp"

namespace rp::measure {

/// One row of the Table-1/Fig-3 style per-IXP summary.
struct IxpSpreadRow {
  ixp::IxpId ixp_id = 0;
  std::string acronym;
  std::size_t probed = 0;
  std::size_t analyzed = 0;
  std::array<std::size_t, kBandCount> band_counts{};
  std::size_t remote_interfaces = 0;
  std::array<std::size_t, kFilterCount> discard_counts{};

  bool has_remote() const { return remote_interfaces > 0; }
};

/// Per-network view across IXPs (Fig. 4).
struct NetworkSpread {
  net::Asn asn;
  /// Distinct studied IXPs where the network has analyzed interfaces.
  std::size_t ixp_count = 0;
  std::size_t analyzed_interfaces = 0;
  std::array<std::size_t, kBandCount> band_counts{};
  /// True when at least one interface classifies as remote.
  bool remote_peer = false;
};

/// §3.3-style validation of the classifier against simulator ground truth.
struct ValidationSummary {
  std::size_t true_positives = 0;   ///< remote classified remote
  std::size_t false_positives = 0;  ///< direct classified remote
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;  ///< remote classified direct
  /// Mean and variance (ms) of min-RTT minus twice the ground-truth one-way
  /// circuit delay — the analogue of the TorIX route-server cross-check
  /// (paper: mean 0.3 ms, variance 1.6 ms^2). The mean/variance pair can be
  /// dominated by a single congested survivor, so the robust median and
  /// 90th-percentile absolute error are reported alongside.
  double rtt_error_mean_ms = 0.0;
  double rtt_error_variance_ms2 = 0.0;
  double rtt_error_median_ms = 0.0;
  double rtt_error_p90_abs_ms = 0.0;

  /// The route-server cross-check proper (when the campaign collected RS
  /// samples): LG-based minimum RTT minus route-server minimum RTT per
  /// analyzed interface. The paper reports mean 0.3 ms and variance
  /// 1.6 ms^2 for TorIX.
  std::size_t rs_compared_interfaces = 0;
  double rs_diff_mean_ms = 0.0;
  double rs_diff_variance_ms2 = 0.0;

  double precision() const;
  double recall() const;
};

/// The §3 study output across all measured IXPs.
class SpreadReport {
 public:
  static SpreadReport build(const std::vector<IxpAnalysis>& analyses,
                            const ClassifierConfig& classifier);

  const std::vector<IxpSpreadRow>& rows() const { return rows_; }
  const std::vector<NetworkSpread>& networks() const { return networks_; }

  /// All analyzed interfaces' minimum RTTs in milliseconds (Fig. 2 input).
  const std::vector<double>& min_rtts_ms() const { return min_rtts_ms_; }

  std::size_t total_probed() const { return total_probed_; }
  std::size_t total_analyzed() const { return total_analyzed_; }
  std::size_t identified_interfaces() const { return identified_interfaces_; }
  std::size_t identified_networks() const { return networks_.size(); }
  std::size_t remote_networks() const;

  /// Fraction of studied IXPs where remote peering was detected (paper: 91%).
  double ixps_with_remote_fraction() const;

  /// Total discards per filter, in pipeline order (paper: 20/82/20/100/28/5).
  std::array<std::size_t, kFilterCount> total_discards() const;

  /// Fig. 4a: histogram of IXP counts, over all identified networks or over
  /// remotely peering networks only.
  std::map<std::size_t, std::size_t> ixp_count_histogram(
      bool remote_only) const;

  /// Fig. 4b: per IXP count, the fraction of the remotely peering networks'
  /// analyzed interfaces in each RTT band.
  std::map<std::size_t, std::array<double, kBandCount>>
  band_fractions_by_ixp_count() const;

  /// Ground-truth validation over all analyzed interfaces.
  const ValidationSummary& validation() const { return validation_; }

 private:
  std::vector<IxpSpreadRow> rows_;
  std::vector<NetworkSpread> networks_;
  std::vector<double> min_rtts_ms_;
  std::size_t total_probed_ = 0;
  std::size_t total_analyzed_ = 0;
  std::size_t identified_interfaces_ = 0;
  ValidationSummary validation_;
  ClassifierConfig classifier_;
};

}  // namespace rp::measure

#include "measure/report.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace rp::measure {

double ValidationSummary::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ValidationSummary::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 1.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

SpreadReport SpreadReport::build(const std::vector<IxpAnalysis>& analyses,
                                 const ClassifierConfig& classifier) {
  SpreadReport report;
  report.classifier_ = classifier;

  struct NetworkAccumulator {
    std::set<ixp::IxpId> ixps;
    std::size_t interfaces = 0;
    std::array<std::size_t, kBandCount> bands{};
    bool remote = false;
  };
  std::unordered_map<net::Asn, NetworkAccumulator> by_network;

  std::vector<double> rtt_errors_ms;
  std::vector<double> rs_diffs_ms;

  for (const auto& analysis : analyses) {
    IxpSpreadRow row;
    row.ixp_id = analysis.ixp_id;
    row.acronym = analysis.ixp_acronym;
    row.probed = analysis.probed_count();
    row.discard_counts = analysis.discard_counts;

    for (const auto& iface : analysis.interfaces) {
      if (!iface.analyzed()) continue;
      ++row.analyzed;
      const RttBand band = band_of(iface.min_rtt, classifier);
      ++row.band_counts[static_cast<std::size_t>(band)];
      const bool classified_remote = is_remote(iface.min_rtt, classifier);
      if (classified_remote) ++row.remote_interfaces;

      report.min_rtts_ms_.push_back(iface.min_rtt.as_millis_f());

      // Ground-truth validation.
      if (classified_remote && iface.truth_remote)
        ++report.validation_.true_positives;
      else if (classified_remote && !iface.truth_remote)
        ++report.validation_.false_positives;
      else if (!classified_remote && iface.truth_remote)
        ++report.validation_.false_negatives;
      else
        ++report.validation_.true_negatives;
      rtt_errors_ms.push_back(iface.min_rtt.as_millis_f() -
                              2.0 * iface.truth_circuit_one_way.as_millis_f());
      if (iface.route_server_min_rtt) {
        rs_diffs_ms.push_back(iface.min_rtt.as_millis_f() -
                              iface.route_server_min_rtt->as_millis_f());
      }

      if (iface.asn) {
        ++report.identified_interfaces_;
        auto& acc = by_network[*iface.asn];
        acc.ixps.insert(analysis.ixp_id);
        ++acc.interfaces;
        ++acc.bands[static_cast<std::size_t>(band)];
        acc.remote = acc.remote || classified_remote;
      }
    }
    report.total_probed_ += row.probed;
    report.total_analyzed_ += row.analyzed;
    report.rows_.push_back(std::move(row));
  }

  for (const auto& [asn, acc] : by_network) {
    NetworkSpread n;
    n.asn = asn;
    n.ixp_count = acc.ixps.size();
    n.analyzed_interfaces = acc.interfaces;
    n.band_counts = acc.bands;
    n.remote_peer = acc.remote;
    report.networks_.push_back(n);
  }
  std::sort(report.networks_.begin(), report.networks_.end(),
            [](const NetworkSpread& a, const NetworkSpread& b) {
              return a.asn < b.asn;
            });

  if (!rtt_errors_ms.empty()) {
    double sum = 0.0;
    for (double e : rtt_errors_ms) sum += e;
    const double mean = sum / static_cast<double>(rtt_errors_ms.size());
    double sq = 0.0;
    for (double e : rtt_errors_ms) sq += (e - mean) * (e - mean);
    report.validation_.rtt_error_mean_ms = mean;
    report.validation_.rtt_error_variance_ms2 =
        sq / static_cast<double>(rtt_errors_ms.size());
    report.validation_.rtt_error_median_ms =
        util::percentile(rtt_errors_ms, 50.0);
    std::vector<double> abs_errors;
    abs_errors.reserve(rtt_errors_ms.size());
    for (double e : rtt_errors_ms) abs_errors.push_back(std::abs(e));
    report.validation_.rtt_error_p90_abs_ms =
        util::percentile(abs_errors, 90.0);
  }
  if (!rs_diffs_ms.empty()) {
    const auto summary = util::summarize(rs_diffs_ms);
    report.validation_.rs_compared_interfaces = rs_diffs_ms.size();
    report.validation_.rs_diff_mean_ms = summary->mean;
    report.validation_.rs_diff_variance_ms2 = summary->variance;
  }
  if (obs::metrics_enabled()) {
    static obs::Counter remote("rp.measure.interfaces.remote");
    static obs::Counter local("rp.measure.interfaces.local");
    std::uint64_t remote_total = 0;
    for (const auto& row : report.rows_) remote_total += row.remote_interfaces;
    remote.add(remote_total);
    local.add(report.total_analyzed_ - remote_total);
  }
  return report;
}

std::size_t SpreadReport::remote_networks() const {
  return static_cast<std::size_t>(
      std::count_if(networks_.begin(), networks_.end(),
                    [](const NetworkSpread& n) { return n.remote_peer; }));
}

double SpreadReport::ixps_with_remote_fraction() const {
  if (rows_.empty()) return 0.0;
  const auto with_remote = static_cast<double>(
      std::count_if(rows_.begin(), rows_.end(),
                    [](const IxpSpreadRow& r) { return r.has_remote(); }));
  return with_remote / static_cast<double>(rows_.size());
}

std::array<std::size_t, kFilterCount> SpreadReport::total_discards() const {
  std::array<std::size_t, kFilterCount> totals{};
  for (const auto& row : rows_)
    for (std::size_t f = 0; f < kFilterCount; ++f)
      totals[f] += row.discard_counts[f];
  return totals;
}

std::map<std::size_t, std::size_t> SpreadReport::ixp_count_histogram(
    bool remote_only) const {
  std::map<std::size_t, std::size_t> histogram;
  for (const auto& network : networks_) {
    if (remote_only && !network.remote_peer) continue;
    ++histogram[network.ixp_count];
  }
  return histogram;
}

std::map<std::size_t, std::array<double, kBandCount>>
SpreadReport::band_fractions_by_ixp_count() const {
  std::map<std::size_t, std::array<std::size_t, kBandCount>> counts;
  for (const auto& network : networks_) {
    if (!network.remote_peer) continue;
    auto& bucket = counts[network.ixp_count];
    for (std::size_t b = 0; b < kBandCount; ++b)
      bucket[b] += network.band_counts[b];
  }
  std::map<std::size_t, std::array<double, kBandCount>> fractions;
  for (const auto& [ixp_count, bucket] : counts) {
    std::size_t total = 0;
    for (std::size_t b = 0; b < kBandCount; ++b) total += bucket[b];
    std::array<double, kBandCount> f{};
    if (total > 0)
      for (std::size_t b = 0; b < kBandCount; ++b)
        f[b] = static_cast<double>(bucket[b]) / static_cast<double>(total);
    fractions[ixp_count] = f;
  }
  return fractions;
}

}  // namespace rp::measure

#include "measure/testbed.hpp"

#include <algorithm>
#include <vector>

namespace rp::measure {
namespace {

util::SimDuration uniform_delay(util::SimDuration lo, util::SimDuration hi,
                                util::Rng& rng) {
  return util::SimDuration::nanos(static_cast<std::int64_t>(
      rng.uniform(static_cast<double>(lo.count_nanos()),
                  static_cast<double>(hi.count_nanos()))));
}

/// Proxied replies are sourced from TEST-NET-2 so they are visibly outside
/// the peering LAN (mirroring replies that arrive from a router's other
/// interface).
net::Ipv4Addr proxy_source(std::size_t index) {
  return net::Ipv4Addr{198, 51, 100,
                       static_cast<std::uint8_t>(1 + index % 250)};
}

}  // namespace

IxpTestbed::IxpTestbed(const ixp::Ixp& ixp, const FaultPlan& faults,
                       const TestbedConfig& config,
                       util::SimTime campaign_start,
                       util::SimDuration campaign_length, util::Rng rng,
                       bool with_route_server)
    : network_(sim_), ixp_(&ixp) {
  network_.seed_noise(rng.fork(1));

  // The fabric: one learning switch per site, metro trunks in a star from
  // site 0. Multi-site exchanges (AMS-IX, LINX, MSK-IX, PTT, DIX-IE, ...)
  // exercise the §3.1 "IXPs with multiple locations" concern: an LG at one
  // site probing a member at another crosses trunks, and the classifier's
  // 10 ms threshold must absorb that.
  const int sites = std::max(1, ixp.site_count());
  for (int site = 0; site < sites; ++site) {
    fabric_sites_.push_back(&network_.emplace_device<sim::L2Switch>(
        ixp.acronym() + "-fabric-" + std::to_string(site)));
    if (site > 0) {
      const auto trunk = uniform_delay(config.inter_site_delay_min,
                                       config.inter_site_delay_max, rng);
      network_.connect(*fabric_sites_[0], *fabric_sites_[site], trunk,
                       std::make_unique<sim::QueueJitter>(
                           util::SimDuration::micros(10), 0.5));
    }
  }
  auto site_for = [this, &rng]() -> sim::L2Switch& {
    return *fabric_sites_[rng.uniform_int(0, fabric_sites_.size() - 1)];
  };

  // Looking glasses first: member fault configs may reference their
  // addresses (LG-asymmetric paths).
  std::uint32_t lg_serial = 0xF0000;
  for (const auto& lg : ixp.looking_glasses()) {
    sim::HostConfig host_config;
    host_config.name = ixp.acronym() + "-LG-" + to_string(lg.op);
    host_config.mac = net::MacAddr::from_id(0x00F00000 + lg_serial++);
    host_config.ip = lg.addr;
    host_config.subnet = ixp.peering_lan();
    host_config.initial_ttl = 64;
    auto& host = network_.emplace_device<sim::Host>(sim_, host_config,
                                                    rng.fork(lg_serial));
    // Spread the LGs across sites: with two LGs the second sits at the far
    // site, so multi-site fabrics stress the LG-consistent filter too.
    sim::L2Switch& lg_site = lg_hosts_.empty()
                                 ? *fabric_sites_.front()
                                 : *fabric_sites_.back();
    network_.connect(lg_site, host, config.lg_link_delay,
                     std::make_unique<sim::QueueJitter>(
                         util::SimDuration::micros(5), 0.4));
    lg_hosts_[lg.op] = &host;
  }

  // Optional route server: an independent in-fabric vantage at the hub
  // site (the §3.3 cross-check). Its address is taken from the top of the
  // peering LAN, far above the allocator-assigned member range.
  if (with_route_server) {
    sim::HostConfig rs_config;
    rs_config.name = ixp.acronym() + "-route-server";
    rs_config.mac = net::MacAddr::from_id(0x00FFFFFE);
    rs_config.ip = ixp.peering_lan().address_at(ixp.peering_lan().size() - 2);
    rs_config.subnet = ixp.peering_lan();
    rs_config.initial_ttl = 64;
    auto& host = network_.emplace_device<sim::Host>(sim_, rs_config,
                                                    rng.fork(0xF00D));
    network_.connect(*fabric_sites_.front(), host, config.lg_link_delay,
                     std::make_unique<sim::QueueJitter>(
                         util::SimDuration::micros(5), 0.4));
    route_server_ = &host;
  }

  std::size_t serial = 0;
  for (const auto& iface : ixp.interfaces()) {
    ++serial;
    const InterfaceFaults fault = faults.for_address(iface.addr);
    if (fault.absent) continue;  // Registry points at nothing.

    sim::HostConfig host_config;
    host_config.name = iface.asn.to_string() + "@" + ixp.acronym();
    host_config.mac = iface.mac;
    host_config.ip = iface.addr;
    host_config.subnet = ixp.peering_lan();
    host_config.initial_ttl = rng.chance(0.5) ? 64 : 255;
    if (fault.odd_initial_ttl) host_config.initial_ttl = *fault.odd_initial_ttl;
    if (fault.ttl_switch_at) {
      const std::uint8_t flipped =
          host_config.initial_ttl == 64 ? std::uint8_t{255} : std::uint8_t{64};
      host_config.ttl_changes.emplace_back(*fault.ttl_switch_at, flipped);
    }
    host_config.blackhole_icmp = fault.blackhole;
    host_config.reply_loss_probability = fault.reply_loss;
    if (fault.reply_extra_hops > 0) {
      host_config.reply_extra_hops = fault.reply_extra_hops;
      host_config.reply_src_override = proxy_source(serial);
    }
    if (fault.lg_asymmetry) {
      const auto it = lg_hosts_.find(*fault.lg_asymmetry);
      if (it != lg_hosts_.end())
        host_config.per_requester_extra = {it->second->config().ip,
                                           config.lg_asymmetry_extra};
    }

    auto& host = network_.emplace_device<sim::Host>(sim_, host_config,
                                                    rng.fork(serial * 2 + 1));

    // Circuit delay: how this member reaches the fabric.
    util::SimDuration base;
    switch (iface.kind) {
      case ixp::AttachmentKind::kDirectColo:
        base = uniform_delay(config.colo_delay_min, config.colo_delay_max, rng);
        break;
      case ixp::AttachmentKind::kIpTransport:
        base = uniform_delay(config.transport_delay_min,
                             config.transport_delay_max, rng);
        break;
      case ixp::AttachmentKind::kRemoteViaProvider:
      case ixp::AttachmentKind::kPartnerIxp:
        // Long-haul pseudowire plus a local tail at the member's PoP.
        base = iface.circuit_one_way +
               uniform_delay(config.colo_delay_min, config.colo_delay_max, rng);
        break;
    }

    std::vector<std::unique_ptr<sim::DelayModel>> parts;
    parts.push_back(std::make_unique<sim::QueueJitter>(
        config.queue_jitter_median, config.queue_jitter_sigma));
    if (fault.persistent_congestion) {
      parts.push_back(std::make_unique<sim::PersistentCongestion>(
          config.persistent_congestion_min, config.persistent_congestion_max));
    } else if (rng.chance(config.busy_hour_fraction)) {
      parts.push_back(sim::CongestionEpisodes::daily_busy_hours(
          campaign_start, campaign_length, config.busy_hour_offset,
          config.busy_hour_length, config.busy_hour_mean_extra));
    }
    std::unique_ptr<sim::DelayModel> noise =
        parts.size() == 1
            ? std::move(parts.front())
            : std::make_unique<sim::CompositeDelay>(std::move(parts));

    network_.connect(site_for(), host, base, std::move(noise));
    member_hosts_[iface.addr] = &host;
  }
}

sim::Host* IxpTestbed::lg_host(ixp::LgOperator op) {
  const auto it = lg_hosts_.find(op);
  return it == lg_hosts_.end() ? nullptr : it->second;
}

sim::Host* IxpTestbed::member_host(net::Ipv4Addr addr) {
  const auto it = member_hosts_.find(addr);
  return it == member_hosts_.end() ? nullptr : it->second;
}

}  // namespace rp::measure

// Raw measurement data: ping samples and per-interface observations.
//
// One campaign at one IXP produces, for every probed member interface, a set
// of ping samples per looking-glass server, plus the registry's view of the
// interface (the PeeringDB/IXP-website/DNS ASN mapping of §3.1, which can be
// wrong or change mid-campaign). Ground-truth fields carried alongside are
// used only for validation (§3.3) and never by the detection pipeline.
#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ixp/ixp.hpp"
#include "net/ip.hpp"
#include "util/sim_time.hpp"

namespace rp::measure {

/// One echo probe and its outcome.
struct PingSample {
  util::SimTime sent_at;
  bool replied = false;
  util::SimDuration rtt;       ///< Valid when replied.
  std::uint8_t reply_ttl = 0;  ///< Valid when replied.
  net::Ipv4Addr reply_src;     ///< Valid when replied.
};

/// Everything observed about one probed interface during a campaign.
struct InterfaceObservation {
  net::Ipv4Addr addr;
  ixp::IxpId ixp_id = 0;

  /// Registry view: (time, ASN) mapping of the interface as the websites
  /// and reverse DNS report it over the campaign. Empty when the network
  /// cannot be identified (the paper maps 3,242 of 4,451 interfaces).
  std::vector<std::pair<util::SimTime, net::Asn>> registry_asn;

  /// Ping samples grouped by probing looking-glass operator.
  std::map<ixp::LgOperator, std::vector<PingSample>> samples;

  /// Independent cross-check samples measured from the IXP route server
  /// (the §3.3 TorIX validation: "the TorIX staff measured minimum RTTs
  /// between the TorIX route server and member interfaces"). Never used by
  /// the detection pipeline — only compared against its output.
  std::vector<PingSample> route_server_samples;

  /// --- Ground truth (validation only; opaque to the filters) ---
  bool truth_remote = false;
  ixp::AttachmentKind truth_kind = ixp::AttachmentKind::kDirectColo;
  util::SimDuration truth_circuit_one_way;

  /// The ASN the registry reports at the end of the campaign (what the
  /// paper's network-identification step would conclude), if identified.
  std::optional<net::Asn> registry_asn_final() const {
    if (registry_asn.empty()) return std::nullopt;
    return registry_asn.back().second;
  }

  /// Count of replies across all looking glasses.
  std::size_t reply_count() const {
    std::size_t n = 0;
    for (const auto& [op, list] : samples)
      for (const auto& s : list) n += s.replied ? 1 : 0;
    return n;
  }
};

/// The full raw dataset of one IXP campaign.
struct IxpMeasurement {
  ixp::IxpId ixp_id = 0;
  std::string ixp_acronym;
  util::SimTime campaign_start;
  util::SimDuration campaign_length;
  std::vector<InterfaceObservation> interfaces;

  /// Discrete events the campaign's simulator executed — a pure function of
  /// (ixp, config, rng), so it is identical at any thread/shard count. Not
  /// part of the serialized dataset; the perf trajectory and the shard
  /// determinism tests read it.
  std::uint64_t events_executed = 0;
};

}  // namespace rp::measure

// Persistence for raw measurement datasets.
//
// The paper released its measurement data publicly; this module provides the
// equivalent for simulated campaigns: a line-oriented CSV dump of every ping
// sample and registry observation, plus a loader that reconstructs the
// IxpMeasurement bit-for-bit. Useful for re-analyzing a campaign offline
// (the SpreadStudy::reanalyze path) without re-running the simulator.
//
// Format (one file per campaign):
//   H,<ixp_id>,<acronym>,<campaign_start_ns>,<campaign_length_ns>
//   I,<index>,<addr>,<truth_remote>,<truth_kind>,<truth_one_way_ns>
//   R,<index>,<when_ns>,<asn>              # registry ASN observation
//   S,<index>,<lg>,<sent_ns>,<replied>,<rtt_ns>,<ttl>,<reply_src>
//   Q,<index>,<sent_ns>,<replied>,<rtt_ns>,<ttl>,<reply_src>   # route server
// Lines starting with '#' are comments. Fields never contain commas.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "measure/sample.hpp"

namespace rp::measure {

/// Writes the full raw dataset of one campaign.
void write_dataset(const IxpMeasurement& measurement, std::ostream& os);

/// Thrown by read_dataset_strict on malformed input. what() always carries
/// the 1-based line number and, when a specific field is at fault, the
/// offending token quoted — e.g. "line 4: bad interface index '-1'".
class DatasetParseError : public std::runtime_error {
 public:
  DatasetParseError(const std::string& message, std::size_t line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  /// The 1-based line the parse failed on (0 for whole-file problems such
  /// as a missing header).
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a dataset written by write_dataset; throws DatasetParseError on
/// malformed input.
IxpMeasurement read_dataset_strict(std::istream& is);

/// Non-throwing wrapper over read_dataset_strict: returns nullopt (with the
/// DatasetParseError message in `error` when provided) on malformed input.
std::optional<IxpMeasurement> read_dataset(std::istream& is,
                                           std::string* error = nullptr);

}  // namespace rp::measure

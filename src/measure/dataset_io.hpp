// Persistence for raw measurement datasets.
//
// The paper released its measurement data publicly; this module provides the
// equivalent for simulated campaigns: a line-oriented CSV dump of every ping
// sample and registry observation, plus a loader that reconstructs the
// IxpMeasurement bit-for-bit. Useful for re-analyzing a campaign offline
// (the SpreadStudy::reanalyze path) without re-running the simulator.
//
// Format (one file per campaign):
//   H,<ixp_id>,<acronym>,<campaign_start_ns>,<campaign_length_ns>
//   I,<index>,<addr>,<truth_remote>,<truth_kind>,<truth_one_way_ns>
//   R,<index>,<when_ns>,<asn>              # registry ASN observation
//   S,<index>,<lg>,<sent_ns>,<replied>,<rtt_ns>,<ttl>,<reply_src>
//   Q,<index>,<sent_ns>,<replied>,<rtt_ns>,<ttl>,<reply_src>   # route server
// Lines starting with '#' are comments. Fields never contain commas.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "measure/sample.hpp"

namespace rp::measure {

/// Writes the full raw dataset of one campaign.
void write_dataset(const IxpMeasurement& measurement, std::ostream& os);

/// Parses a dataset written by write_dataset. Returns nullopt (with a
/// message in `error` when provided) on malformed input.
std::optional<IxpMeasurement> read_dataset(std::istream& is,
                                           std::string* error = nullptr);

}  // namespace rp::measure

#include "measure/faults.hpp"

namespace rp::measure {

FaultPlan plan_faults(const ixp::Ixp& ixp, const FaultPlanConfig& config,
                      util::SimTime campaign_start,
                      util::SimDuration campaign_length, util::Rng& rng) {
  FaultPlan plan;
  const bool has_two_lgs = ixp.looking_glasses().size() >= 2;

  for (const auto& iface : ixp.interfaces()) {
    InterfaceFaults faults;

    // Headline artefact: draw one (or none) per interface.
    const double u = rng.uniform();
    double edge = config.blackhole_rate;
    if (u < edge) {
      faults.blackhole = true;
    } else if (u < (edge += config.absent_rate)) {
      faults.absent = true;
    } else if (u < (edge += config.ttl_switch_rate)) {
      // Switch somewhere in the middle 80% of the campaign so both TTLs are
      // observed.
      const double at = rng.uniform(0.1, 0.9);
      faults.ttl_switch_at =
          campaign_start + util::SimDuration::from_seconds_f(
                               campaign_length.as_seconds_f() * at);
    } else if (u < (edge += config.odd_ttl_rate)) {
      faults.odd_initial_ttl = rng.chance(0.5) ? 32 : 128;
    } else if (u < (edge += config.proxy_reply_rate)) {
      faults.reply_extra_hops = 1 + static_cast<int>(rng.uniform_int(0, 2));
    } else if (u < (edge += config.persistent_congestion_rate)) {
      faults.persistent_congestion = true;
    } else if (has_two_lgs && u < (edge += config.lg_asymmetry_rate)) {
      faults.lg_asymmetry = rng.chance(0.5) ? ixp::LgOperator::kPch
                                            : ixp::LgOperator::kRipeNcc;
    } else if (u < (edge += config.asn_change_rate)) {
      faults.asn_change = true;
    }

    // Orthogonal nuisances.
    if (rng.chance(config.unidentified_rate)) faults.unidentified = true;
    if (rng.chance(config.lossy_rate)) faults.reply_loss = config.lossy_reply_loss;

    plan.assign(iface.addr, faults);
  }
  return plan;
}

}  // namespace rp::measure

#include "measure/dataset_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace rp::measure {
namespace {

const char* kind_code(ixp::AttachmentKind kind) {
  switch (kind) {
    case ixp::AttachmentKind::kDirectColo: return "colo";
    case ixp::AttachmentKind::kIpTransport: return "transport";
    case ixp::AttachmentKind::kRemoteViaProvider: return "remote";
    case ixp::AttachmentKind::kPartnerIxp: return "partner";
  }
  return "colo";
}

std::optional<ixp::AttachmentKind> parse_kind(std::string_view s) {
  if (s == "colo") return ixp::AttachmentKind::kDirectColo;
  if (s == "transport") return ixp::AttachmentKind::kIpTransport;
  if (s == "remote") return ixp::AttachmentKind::kRemoteViaProvider;
  if (s == "partner") return ixp::AttachmentKind::kPartnerIxp;
  return std::nullopt;
}

void write_sample_fields(std::ostream& os, const PingSample& sample) {
  os << ',' << sample.sent_at.count_nanos() << ','
     << (sample.replied ? 1 : 0) << ',' << sample.rtt.count_nanos() << ','
     << static_cast<unsigned>(sample.reply_ttl) << ','
     << sample.reply_src.to_string();
}

bool parse_i64(std::string_view s, long long& out) {
  if (s.empty()) return false;
  bool negative = false;
  if (s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  unsigned long long value = 0;
  if (s.empty()) return false;
  // Reject overflow instead of wrapping: a wrapped value would silently
  // alias a different (possibly valid) interface index or timestamp.
  const unsigned long long limit =
      negative ? 1ull + static_cast<unsigned long long>(
                            std::numeric_limits<long long>::max())
               : static_cast<unsigned long long>(
                     std::numeric_limits<long long>::max());
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<unsigned>(c - '0');
    if (value > (limit - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = negative ? static_cast<long long>(~value + 1)
                 : static_cast<long long>(value);
  return true;
}

/// Parses the shared sample fields starting at parts[offset].
bool parse_sample(const std::vector<std::string>& parts, std::size_t offset,
                  PingSample& sample) {
  if (parts.size() != offset + 5) return false;
  long long sent = 0, rtt = 0, replied = 0, ttl = 0;
  if (!parse_i64(parts[offset], sent) ||
      !parse_i64(parts[offset + 1], replied) ||
      !parse_i64(parts[offset + 2], rtt) ||
      !parse_i64(parts[offset + 3], ttl))
    return false;
  const auto src = net::Ipv4Addr::parse(parts[offset + 4]);
  if (!src || ttl < 0 || ttl > 255) return false;
  sample.sent_at = util::SimTime::at(util::SimDuration::nanos(sent));
  sample.replied = replied != 0;
  sample.rtt = util::SimDuration::nanos(rtt);
  sample.reply_ttl = static_cast<std::uint8_t>(ttl);
  sample.reply_src = *src;
  return true;
}

}  // namespace

void write_dataset(const IxpMeasurement& measurement, std::ostream& os) {
  os << "# remote-peering raw campaign dataset\n";
  os << "H," << measurement.ixp_id << ',' << measurement.ixp_acronym << ','
     << measurement.campaign_start.count_nanos() << ','
     << measurement.campaign_length.count_nanos() << '\n';
  for (std::size_t i = 0; i < measurement.interfaces.size(); ++i) {
    const auto& obs = measurement.interfaces[i];
    os << "I," << i << ',' << obs.addr.to_string() << ','
       << (obs.truth_remote ? 1 : 0) << ',' << kind_code(obs.truth_kind)
       << ',' << obs.truth_circuit_one_way.count_nanos() << '\n';
    for (const auto& [when, asn] : obs.registry_asn)
      os << "R," << i << ',' << when.count_nanos() << ',' << asn.value()
         << '\n';
    for (const auto& [op, samples] : obs.samples) {
      const char* lg = op == ixp::LgOperator::kPch ? "pch" : "ripe";
      for (const auto& sample : samples) {
        os << "S," << i << ',' << lg;
        write_sample_fields(os, sample);
        os << '\n';
      }
    }
    for (const auto& sample : obs.route_server_samples) {
      os << "Q," << i;
      write_sample_fields(os, sample);
      os << '\n';
    }
  }
}

std::optional<IxpMeasurement> read_dataset(std::istream& is,
                                           std::string* error) {
  auto fail = [error](const std::string& message,
                      std::size_t line) -> std::optional<IxpMeasurement> {
    if (error != nullptr)
      *error = "line " + std::to_string(line) + ": " + message;
    return std::nullopt;
  };

  IxpMeasurement measurement;
  bool have_header = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line.front() == '#') continue;
    const auto parts = util::split(line, ',');
    if (parts.empty()) continue;
    const std::string& tag = parts[0];

    if (tag == "H") {
      if (have_header)
        return fail("duplicate header line (dataset holds one campaign)",
                    line_number);
      if (parts.size() != 5) return fail("malformed header", line_number);
      long long ixp_id = 0, start = 0, length = 0;
      if (!parse_i64(parts[1], ixp_id) || !parse_i64(parts[3], start) ||
          !parse_i64(parts[4], length))
        return fail("bad header numbers", line_number);
      measurement.ixp_id = static_cast<ixp::IxpId>(ixp_id);
      measurement.ixp_acronym = parts[2];
      measurement.campaign_start =
          util::SimTime::at(util::SimDuration::nanos(start));
      measurement.campaign_length = util::SimDuration::nanos(length);
      have_header = true;
      continue;
    }
    if (!have_header) return fail("data before header", line_number);

    long long index = 0;
    if (parts.size() < 2 || !parse_i64(parts[1], index) || index < 0)
      return fail("bad interface index", line_number);

    if (tag == "I") {
      if (parts.size() != 6) return fail("malformed I line", line_number);
      if (static_cast<std::size_t>(index) != measurement.interfaces.size())
        return fail("interface indices must be dense and ordered",
                    line_number);
      InterfaceObservation obs;
      const auto addr = net::Ipv4Addr::parse(parts[2]);
      const auto kind = parse_kind(parts[4]);
      long long remote = 0, one_way = 0;
      if (!addr || !kind || !parse_i64(parts[3], remote) ||
          !parse_i64(parts[5], one_way))
        return fail("bad I fields", line_number);
      obs.addr = *addr;
      obs.ixp_id = measurement.ixp_id;
      obs.truth_remote = remote != 0;
      obs.truth_kind = *kind;
      obs.truth_circuit_one_way = util::SimDuration::nanos(one_way);
      measurement.interfaces.push_back(std::move(obs));
      continue;
    }

    if (static_cast<std::size_t>(index) >= measurement.interfaces.size())
      return fail("sample references unknown interface", line_number);
    InterfaceObservation& obs = measurement.interfaces[index];

    if (tag == "R") {
      if (parts.size() != 4) return fail("malformed R line", line_number);
      long long when = 0, asn = 0;
      if (!parse_i64(parts[2], when) || !parse_i64(parts[3], asn) || asn < 0)
        return fail("bad R fields", line_number);
      obs.registry_asn.emplace_back(
          util::SimTime::at(util::SimDuration::nanos(when)),
          net::Asn{static_cast<std::uint32_t>(asn)});
    } else if (tag == "S") {
      if (parts.size() != 8) return fail("malformed S line", line_number);
      const auto op = parts[2] == "pch"
                          ? ixp::LgOperator::kPch
                          : (parts[2] == "ripe"
                                 ? ixp::LgOperator::kRipeNcc
                                 : static_cast<ixp::LgOperator>(255));
      if (static_cast<int>(op) == 255)
        return fail("unknown looking glass", line_number);
      PingSample sample;
      if (!parse_sample(parts, 3, sample))
        return fail("bad S fields", line_number);
      obs.samples[op].push_back(sample);
    } else if (tag == "Q") {
      PingSample sample;
      if (!parse_sample(parts, 2, sample))
        return fail("bad Q fields", line_number);
      obs.route_server_samples.push_back(sample);
    } else {
      return fail("unknown tag '" + tag + "'", line_number);
    }
  }
  if (!have_header) return fail("missing header", 0);
  return measurement;
}

}  // namespace rp::measure

#include "measure/dataset_io.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "fault/fault.hpp"
#include "util/strings.hpp"

namespace rp::measure {
namespace {

const char* kind_code(ixp::AttachmentKind kind) {
  switch (kind) {
    case ixp::AttachmentKind::kDirectColo: return "colo";
    case ixp::AttachmentKind::kIpTransport: return "transport";
    case ixp::AttachmentKind::kRemoteViaProvider: return "remote";
    case ixp::AttachmentKind::kPartnerIxp: return "partner";
  }
  return "colo";
}

std::optional<ixp::AttachmentKind> parse_kind(std::string_view s) {
  if (s == "colo") return ixp::AttachmentKind::kDirectColo;
  if (s == "transport") return ixp::AttachmentKind::kIpTransport;
  if (s == "remote") return ixp::AttachmentKind::kRemoteViaProvider;
  if (s == "partner") return ixp::AttachmentKind::kPartnerIxp;
  return std::nullopt;
}

void write_sample_fields(std::ostream& os, const PingSample& sample) {
  os << ',' << sample.sent_at.count_nanos() << ','
     << (sample.replied ? 1 : 0) << ',' << sample.rtt.count_nanos() << ','
     << static_cast<unsigned>(sample.reply_ttl) << ','
     << sample.reply_src.to_string();
}

bool parse_i64(std::string_view s, long long& out) {
  if (s.empty()) return false;
  bool negative = false;
  if (s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  unsigned long long value = 0;
  if (s.empty()) return false;
  // Reject overflow instead of wrapping: a wrapped value would silently
  // alias a different (possibly valid) interface index or timestamp.
  const unsigned long long limit =
      negative ? 1ull + static_cast<unsigned long long>(
                            std::numeric_limits<long long>::max())
               : static_cast<unsigned long long>(
                     std::numeric_limits<long long>::max());
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<unsigned>(c - '0');
    if (value > (limit - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = negative ? static_cast<long long>(~value + 1)
                 : static_cast<long long>(value);
  return true;
}

std::string quoted(const std::string& token) { return "'" + token + "'"; }

/// Parses an integer field or throws naming the field and the bad token.
long long require_i64(const std::string& token, const std::string& what,
                      std::size_t line) {
  long long value = 0;
  if (!parse_i64(token, value))
    throw DatasetParseError("bad " + what + " " + quoted(token), line);
  return value;
}

/// Parses the shared sample fields starting at parts[offset]; throws
/// DatasetParseError naming the offending field and token.
PingSample parse_sample(const std::vector<std::string>& parts,
                        std::size_t offset, const std::string& tag,
                        std::size_t line) {
  if (parts.size() != offset + 5)
    throw DatasetParseError(
        "malformed " + tag + " line: expected " +
            std::to_string(offset + 5) + " fields, got " +
            std::to_string(parts.size()),
        line);
  const long long sent = require_i64(parts[offset], "sent timestamp", line);
  const long long replied = require_i64(parts[offset + 1], "replied flag",
                                        line);
  const long long rtt = require_i64(parts[offset + 2], "RTT", line);
  const long long ttl = require_i64(parts[offset + 3], "reply TTL", line);
  if (ttl < 0 || ttl > 255)
    throw DatasetParseError(
        "bad reply TTL " + quoted(parts[offset + 3]) + " (outside 0..255)",
        line);
  const auto src = net::Ipv4Addr::parse(parts[offset + 4]);
  if (!src)
    throw DatasetParseError(
        "bad reply source address " + quoted(parts[offset + 4]), line);
  PingSample sample;
  sample.sent_at = util::SimTime::at(util::SimDuration::nanos(sent));
  sample.replied = replied != 0;
  sample.rtt = util::SimDuration::nanos(rtt);
  sample.reply_ttl = static_cast<std::uint8_t>(ttl);
  sample.reply_src = *src;
  return sample;
}

}  // namespace

void write_dataset(const IxpMeasurement& measurement, std::ostream& os) {
  os << "# remote-peering raw campaign dataset\n";
  os << "H," << measurement.ixp_id << ',' << measurement.ixp_acronym << ','
     << measurement.campaign_start.count_nanos() << ','
     << measurement.campaign_length.count_nanos() << '\n';
  for (std::size_t i = 0; i < measurement.interfaces.size(); ++i) {
    const auto& obs = measurement.interfaces[i];
    os << "I," << i << ',' << obs.addr.to_string() << ','
       << (obs.truth_remote ? 1 : 0) << ',' << kind_code(obs.truth_kind)
       << ',' << obs.truth_circuit_one_way.count_nanos() << '\n';
    for (const auto& [when, asn] : obs.registry_asn)
      os << "R," << i << ',' << when.count_nanos() << ',' << asn.value()
         << '\n';
    for (const auto& [op, samples] : obs.samples) {
      const char* lg = op == ixp::LgOperator::kPch ? "pch" : "ripe";
      for (const auto& sample : samples) {
        os << "S," << i << ',' << lg;
        write_sample_fields(os, sample);
        os << '\n';
      }
    }
    for (const auto& sample : obs.route_server_samples) {
      os << "Q," << i;
      write_sample_fields(os, sample);
      os << '\n';
    }
  }
}

IxpMeasurement read_dataset_strict(std::istream& is) {
  // Fires per data line (after comment/blank skipping), so nth=N targets the
  // Nth record deterministically regardless of surrounding noise lines.
  static fault::Site parse_site(fault::kSiteDatasetParse);
  IxpMeasurement measurement;
  bool have_header = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line.front() == '#') continue;
    parse_site.maybe_throw();
    const auto parts = util::split(line, ',');
    if (parts.empty()) continue;
    const std::string& tag = parts[0];

    if (tag == "H") {
      if (have_header)
        throw DatasetParseError(
            "duplicate header line (dataset holds one campaign)", line_number);
      if (parts.size() != 5)
        throw DatasetParseError("malformed header: expected 5 fields, got " +
                                    std::to_string(parts.size()),
                                line_number);
      const long long ixp_id =
          require_i64(parts[1], "header numbers: IXP id", line_number);
      const long long start = require_i64(
          parts[3], "header numbers: campaign start", line_number);
      const long long length = require_i64(
          parts[4], "header numbers: campaign length", line_number);
      measurement.ixp_id = static_cast<ixp::IxpId>(ixp_id);
      measurement.ixp_acronym = parts[2];
      measurement.campaign_start =
          util::SimTime::at(util::SimDuration::nanos(start));
      measurement.campaign_length = util::SimDuration::nanos(length);
      have_header = true;
      continue;
    }
    if (!have_header)
      throw DatasetParseError("data before header", line_number);

    if (parts.size() < 2)
      throw DatasetParseError("bad interface index (missing field)",
                              line_number);
    long long index = 0;
    if (!parse_i64(parts[1], index) || index < 0)
      throw DatasetParseError("bad interface index " + quoted(parts[1]),
                              line_number);

    if (tag == "I") {
      if (parts.size() != 6)
        throw DatasetParseError("malformed I line: expected 6 fields, got " +
                                    std::to_string(parts.size()),
                                line_number);
      if (static_cast<std::size_t>(index) != measurement.interfaces.size())
        throw DatasetParseError(
            "interface indices must be dense and ordered: got " +
                quoted(parts[1]) + ", expected " +
                std::to_string(measurement.interfaces.size()),
            line_number);
      InterfaceObservation obs;
      const auto addr = net::Ipv4Addr::parse(parts[2]);
      if (!addr)
        throw DatasetParseError("bad interface address " + quoted(parts[2]),
                                line_number);
      const long long remote =
          require_i64(parts[3], "remote flag", line_number);
      const auto kind = parse_kind(parts[4]);
      if (!kind)
        throw DatasetParseError("bad attachment kind " + quoted(parts[4]),
                                line_number);
      const long long one_way =
          require_i64(parts[5], "circuit one-way delay", line_number);
      obs.addr = *addr;
      obs.ixp_id = measurement.ixp_id;
      obs.truth_remote = remote != 0;
      obs.truth_kind = *kind;
      obs.truth_circuit_one_way = util::SimDuration::nanos(one_way);
      measurement.interfaces.push_back(std::move(obs));
      continue;
    }

    if (static_cast<std::size_t>(index) >= measurement.interfaces.size())
      throw DatasetParseError(
          "sample references unknown interface " + quoted(parts[1]),
          line_number);
    InterfaceObservation& obs = measurement.interfaces[index];

    if (tag == "R") {
      if (parts.size() != 4)
        throw DatasetParseError("malformed R line: expected 4 fields, got " +
                                    std::to_string(parts.size()),
                                line_number);
      const long long when =
          require_i64(parts[2], "registry timestamp", line_number);
      const long long asn = require_i64(parts[3], "registry ASN", line_number);
      if (asn < 0)
        throw DatasetParseError("bad registry ASN " + quoted(parts[3]),
                                line_number);
      obs.registry_asn.emplace_back(
          util::SimTime::at(util::SimDuration::nanos(when)),
          net::Asn{static_cast<std::uint32_t>(asn)});
    } else if (tag == "S") {
      if (parts.size() != 8)
        throw DatasetParseError("malformed S line: expected 8 fields, got " +
                                    std::to_string(parts.size()),
                                line_number);
      const auto op = parts[2] == "pch"
                          ? ixp::LgOperator::kPch
                          : (parts[2] == "ripe"
                                 ? ixp::LgOperator::kRipeNcc
                                 : static_cast<ixp::LgOperator>(255));
      if (static_cast<int>(op) == 255)
        throw DatasetParseError("unknown looking glass " + quoted(parts[2]),
                                line_number);
      obs.samples[op].push_back(parse_sample(parts, 3, tag, line_number));
    } else if (tag == "Q") {
      obs.route_server_samples.push_back(
          parse_sample(parts, 2, tag, line_number));
    } else {
      throw DatasetParseError("unknown tag " + quoted(tag), line_number);
    }
  }
  if (!have_header) throw DatasetParseError("missing header", 0);
  return measurement;
}

std::optional<IxpMeasurement> read_dataset(std::istream& is,
                                           std::string* error) {
  try {
    return read_dataset_strict(is);
  } catch (const DatasetParseError& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  } catch (const fault::InjectedFault& e) {
    // An injected parse failure degrades exactly like a malformed dataset:
    // the caller sees "no measurement" plus a message, never an escape.
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

}  // namespace rp::measure

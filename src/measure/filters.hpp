// The six conservative filters of §3.1 and the per-interface analysis.
//
// Applied in the paper's order — sample-size, TTL-switch, TTL-match,
// RTT-consistent, LG-consistent, ASN-change — each filter discards
// interfaces whose measurements could mislead the remoteness classifier:
//   sample-size     too few replies from some probing LG (blackholing,
//                   stale registry addresses, heavy loss);
//   TTL-switch      reply TTL changed mid-campaign (OS change);
//   TTL-match       reply TTL is not an expected OS maximum, so the reply
//                   crossed an extra IP hop (proxied reply, off-subnet
//                   target) or came from an odd stack;
//   RTT-consistent  too few replies near the minimum (persistent congestion);
//   LG-consistent   the two LGs' minima disagree (sick path segment);
//   ASN-change      the registry remapped the interface mid-campaign.
// Every filter can be disabled individually for the ablation study.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "measure/sample.hpp"

namespace rp::measure {

/// The filters, in application order.
enum class Filter : std::size_t {
  kSampleSize = 0,
  kTtlSwitch = 1,
  kTtlMatch = 2,
  kRttConsistent = 3,
  kLgConsistent = 4,
  kAsnChange = 5,
};

inline constexpr std::size_t kFilterCount = 6;

std::string to_string(Filter f);

/// Thresholds of the filter pipeline (defaults are the paper's).
struct FilterConfig {
  /// Minimum TTL-accepted replies required from *each* probing LG.
  int min_replies_per_lg = 8;
  /// Expected OS maximum TTLs; replies with any other TTL are discarded.
  std::vector<std::uint8_t> accepted_max_ttls = {64, 255};
  /// At least this many replies must fall within the consistency margin of
  /// the minimum RTT.
  int min_consistent_replies = 4;
  /// Consistency margin: max(floor, fraction * min RTT).
  double consistency_fraction = 0.10;
  util::SimDuration consistency_floor = util::SimDuration::millis(5);

  /// Per-filter enable switches (all on by default); the ablation bench
  /// turns filters off one at a time.
  std::array<bool, kFilterCount> enabled = {true, true, true,
                                            true, true, true};

  bool is_enabled(Filter f) const {
    return enabled[static_cast<std::size_t>(f)];
  }
};

/// The verdict for one probed interface.
struct InterfaceAnalysis {
  net::Ipv4Addr addr;
  ixp::IxpId ixp_id = 0;
  /// Which filter discarded the interface; nullopt => analyzed.
  std::optional<Filter> discarded_by;
  /// Minimum RTT over accepted replies (valid when analyzed).
  util::SimDuration min_rtt;
  /// Accepted reply count backing min_rtt.
  std::size_t accepted_replies = 0;
  /// Final registry ASN, when the network is identified.
  std::optional<net::Asn> asn;

  /// Minimum RTT over the independent route-server cross-check samples,
  /// when the campaign collected any (§3.3 validation).
  std::optional<util::SimDuration> route_server_min_rtt;

  /// Ground truth carried through for validation.
  bool truth_remote = false;
  ixp::AttachmentKind truth_kind = ixp::AttachmentKind::kDirectColo;
  util::SimDuration truth_circuit_one_way;

  bool analyzed() const { return !discarded_by.has_value(); }
};

/// All verdicts for one IXP campaign plus per-filter discard counts.
struct IxpAnalysis {
  ixp::IxpId ixp_id = 0;
  std::string ixp_acronym;
  std::vector<InterfaceAnalysis> interfaces;
  std::array<std::size_t, kFilterCount> discard_counts{};

  std::size_t probed_count() const { return interfaces.size(); }
  std::size_t analyzed_count() const;
};

/// Runs the filter pipeline over one campaign's raw data.
IxpAnalysis apply_filters(const IxpMeasurement& measurement,
                          const FilterConfig& config);

/// Analyzes a single interface (exposed for unit tests and the ablation
/// bench). `two_lgs` tells whether the campaign probed from two LGs.
InterfaceAnalysis analyze_interface(const InterfaceObservation& obs,
                                    const FilterConfig& config);

}  // namespace rp::measure

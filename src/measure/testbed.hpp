// Builds a simulated layer-2 testbed for one IXP.
//
// The fabric is a learning switch; every member interface is a host hanging
// off it over a link whose one-way delay reflects how the member actually
// reaches the exchange — a facility cross-connect for co-located routers, a
// metro transport for IP-transport members, or the remote-peering provider's
// long-haul pseudowire (computed from geography). Looking-glass servers sit
// inside the facility, so a probe's RTT is dominated by the member's circuit:
// the observable the detection method is built on.
#pragma once

#include <memory>
#include <unordered_map>

#include "ixp/ixp.hpp"
#include "measure/faults.hpp"
#include "sim/host.hpp"
#include "sim/l2_switch.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace rp::measure {

/// Physical-layer knobs of the testbed.
struct TestbedConfig {
  /// LG servers connect inside the facility.
  util::SimDuration lg_link_delay = util::SimDuration::micros(15);
  /// Cross-connect delay range for co-located member routers.
  util::SimDuration colo_delay_min = util::SimDuration::micros(40);
  util::SimDuration colo_delay_max = util::SimDuration::micros(400);
  /// Metro IP-transport one-way delay range (member router in the same
  /// metropolitan area, still direct peering per §2.2).
  util::SimDuration transport_delay_min = util::SimDuration::micros(200);
  util::SimDuration transport_delay_max = util::SimDuration::millis(2);
  /// Per-frame queueing jitter on every member link (lognormal median).
  util::SimDuration queue_jitter_median = util::SimDuration::micros(30);
  double queue_jitter_sigma = 0.6;
  /// Extra-delay sweep on persistently congested member ports. A broad
  /// range keeps the minimum RTT a rare outlier so the RTT-consistent
  /// filter fires.
  util::SimDuration persistent_congestion_min = util::SimDuration::millis(10);
  util::SimDuration persistent_congestion_max = util::SimDuration::millis(400);
  /// Baseline extra delay of an LG-asymmetric path segment (a sick trunk
  /// adds this floor plus jitter to one LG's probes only).
  util::SimDuration lg_asymmetry_extra = util::SimDuration::millis(8);
  /// Inter-site trunk one-way delay range for multi-site fabrics (metro
  /// dark fiber between facilities of the same exchange).
  util::SimDuration inter_site_delay_min = util::SimDuration::micros(100);
  util::SimDuration inter_site_delay_max = util::SimDuration::micros(450);
  /// Daily busy-hour congestion on member links: window and mean extra.
  util::SimDuration busy_hour_offset = util::SimDuration::hours(19);
  util::SimDuration busy_hour_length = util::SimDuration::hours(3);
  util::SimDuration busy_hour_mean_extra = util::SimDuration::millis(3);
  /// Fraction of member links that experience the busy-hour congestion.
  double busy_hour_fraction = 0.35;
};

/// A ready-to-probe fabric for one IXP.
class IxpTestbed {
 public:
  IxpTestbed(const ixp::Ixp& ixp, const FaultPlan& faults,
             const TestbedConfig& config, util::SimTime campaign_start,
             util::SimDuration campaign_length, util::Rng rng,
             bool with_route_server = false);

  sim::Simulator& simulator() { return sim_; }
  const ixp::Ixp& ixp() const { return *ixp_; }

  /// The LG host for an operator; nullptr if the IXP lacks that LG.
  sim::Host* lg_host(ixp::LgOperator op);
  /// The route-server host, when built with one.
  sim::Host* route_server_host() { return route_server_; }
  /// The member host answering for `addr`; nullptr if the interface is
  /// absent from the LAN (stale registry data).
  sim::Host* member_host(net::Ipv4Addr addr);

  std::size_t host_count() const { return member_hosts_.size(); }

  /// Number of fabric switches built (== the IXP's site count).
  std::size_t site_count() const { return fabric_sites_.size(); }

 private:
  sim::Simulator sim_;
  sim::Network network_;
  const ixp::Ixp* ixp_;
  /// One switch per site; site 0 is the hub of a star of metro trunks.
  std::vector<sim::L2Switch*> fabric_sites_;
  sim::Host* route_server_ = nullptr;
  std::unordered_map<net::Ipv4Addr, sim::Host*> member_hosts_;
  std::unordered_map<ixp::LgOperator, sim::Host*> lg_hosts_;
};

}  // namespace rp::measure

#include "sim/host.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rp::sim {

Host::Host(Simulator& sim, HostConfig config, util::Rng rng)
    : Device(config.name),
      sim_(&sim),
      config_(std::move(config)),
      rng_(rng),
      icmp_id_(static_cast<std::uint16_t>(config_.mac.to_u64() & 0xFFFF)) {}

std::size_t Host::allocate_interface() {
  if (attached_) throw std::logic_error("Host " + name() + ": already wired");
  attached_ = true;
  return 0;
}

std::uint8_t Host::current_initial_ttl(util::SimTime now) const {
  std::uint8_t ttl = config_.initial_ttl;
  for (const auto& [when, value] : config_.ttl_changes) {
    if (when <= now) ttl = value;
  }
  return ttl;
}

void Host::receive(std::size_t /*ifindex*/, const EthernetFrame& frame) {
  if (frame.is_arp()) {
    handle_arp(frame.arp());
    return;
  }
  // NIC filtering: accept only frames addressed to us (flooded unknown
  // unicast for another MAC is dropped, as a real NIC would).
  if (frame.dst != config_.mac && !frame.dst.is_broadcast()) return;
  if (frame.is_ipv4()) handle_ipv4(frame.ipv4());
}

void Host::handle_arp(const ArpMessage& arp) {
  // Gratuitously cache the sender's mapping (hosts in a LAN learn the
  // requester's address from the broadcast request itself).
  arp_cache_[arp.sender_ip] = arp.sender_mac;

  if (arp.op == ArpMessage::Op::kRequest && arp.target_ip == config_.ip) {
    EthernetFrame reply;
    reply.src = config_.mac;
    reply.dst = arp.sender_mac;
    reply.payload = ArpMessage{ArpMessage::Op::kReply, config_.mac, config_.ip,
                               arp.sender_mac, arp.sender_ip};
    // Tiny control-plane turnaround.
    auto send = [this, reply] { transmit(0, reply); };
    static_assert(Simulator::stored_inline<decltype(send)>(),
                  "ARP turnaround must stay slab-resident");
    sim_->schedule_in(util::SimDuration::micros(20), std::move(send));
    return;
  }

  if (arp.op == ArpMessage::Op::kReply) {
    const auto pending = awaiting_arp_.find(arp.sender_ip);
    if (pending == awaiting_arp_.end()) return;
    const auto queued = std::move(pending->second);
    awaiting_arp_.erase(pending);
    for (const auto& echo : queued)
      send_echo_to(arp.sender_mac, arp.sender_ip, echo.sequence);
  }
}

void Host::handle_ipv4(const Ipv4Packet& packet) {
  if (packet.dst != config_.ip) return;
  if (packet.icmp.type == IcmpEcho::Type::kRequest) {
    ++echo_requests_received_;
    if (config_.blackhole_icmp) return;
    if (config_.reply_loss_probability > 0.0 &&
        rng_.chance(config_.reply_loss_probability))
      return;
    answer_echo(packet);
    return;
  }
  // Echo reply: match an outstanding probe of ours.
  if (packet.icmp.id != icmp_id_) return;
  const auto it = outstanding_.find(packet.icmp.sequence);
  if (it == outstanding_.end()) return;  // Late reply after timeout.
  PingOutcome outcome;
  outcome.replied = true;
  outcome.rtt = sim_->now() - it->second.sent_at;
  outcome.reply_ttl = packet.ttl;
  outcome.reply_src = packet.src;
  outcome.sequence = packet.icmp.sequence;
  auto callback = std::move(it->second.callback);
  outstanding_.erase(it);
  callback(outcome);
}

void Host::answer_echo(const Ipv4Packet& request) {
  const auto requester_mac = arp_cache_.find(request.src);
  if (requester_mac == arp_cache_.end()) return;  // Can't route the reply.

  Ipv4Packet reply;
  reply.dst = request.src;
  reply.icmp = IcmpEcho{IcmpEcho::Type::kReply, request.icmp.id,
                        request.icmp.sequence};

  util::SimDuration delay = processing_delay();
  if (config_.per_requester_extra &&
      config_.per_requester_extra->first == request.src) {
    const double floor_s = config_.per_requester_extra->second.as_seconds_f();
    delay += util::SimDuration::from_seconds_f(
        floor_s + rng_.exponential(floor_s / 4.0));
  }
  std::uint8_t ttl = current_initial_ttl(sim_->now());
  if (config_.reply_extra_hops > 0) {
    // Proxied reply: it leaves another device and crosses extra IP hops on
    // the way back, so the TTL drops and the source address may differ.
    const int hops = config_.reply_extra_hops;
    ttl = static_cast<std::uint8_t>(ttl > hops ? ttl - hops : 1);
    delay += config_.per_hop_delay * hops;
    reply.src = config_.reply_src_override.value_or(config_.ip);
  } else {
    reply.src = config_.ip;
  }
  reply.ttl = ttl;

  EthernetFrame frame;
  frame.src = config_.mac;
  frame.dst = requester_mac->second;
  frame.payload = reply;
  auto send = [this, frame] { transmit(0, frame); };
  static_assert(Simulator::stored_inline<decltype(send)>(),
                "echo-reply emission must stay slab-resident");
  sim_->schedule_in(delay, std::move(send));
}

void Host::ping(net::Ipv4Addr target, util::SimDuration timeout,
                std::function<void(const PingOutcome&)> callback) {
  const std::uint16_t sequence = next_sequence_++;
  outstanding_.emplace(sequence,
                       Outstanding{sim_->now(), std::move(callback)});

  // Give up at the timeout whether the hold-up is ARP or the echo itself.
  sim_->schedule_in(timeout, [this, sequence, target] {
    const auto it = outstanding_.find(sequence);
    if (it == outstanding_.end()) return;  // Answered in time.
    PingOutcome outcome;
    outcome.replied = false;
    outcome.sequence = sequence;
    auto cb = std::move(it->second.callback);
    outstanding_.erase(it);
    // Drop any stale ARP queue entry for this sequence.
    const auto pending = awaiting_arp_.find(target);
    if (pending != awaiting_arp_.end()) {
      auto& queue = pending->second;
      queue.erase(std::remove_if(queue.begin(), queue.end(),
                                 [sequence](const PendingEcho& e) {
                                   return e.sequence == sequence;
                                 }),
                  queue.end());
      if (queue.empty()) awaiting_arp_.erase(pending);
    }
    cb(outcome);
  });

  const auto mac = arp_cache_.find(target);
  if (mac != arp_cache_.end()) {
    send_echo_to(mac->second, target, sequence);
    return;
  }
  const bool arp_in_flight = awaiting_arp_.contains(target);
  awaiting_arp_[target].push_back(PendingEcho{sequence});
  if (!arp_in_flight) send_arp_request(target);
}

void Host::send_echo_to(net::MacAddr dst_mac, net::Ipv4Addr dst_ip,
                        std::uint16_t sequence) {
  Ipv4Packet packet;
  packet.src = config_.ip;
  packet.dst = dst_ip;
  packet.ttl = current_initial_ttl(sim_->now());
  packet.icmp = IcmpEcho{IcmpEcho::Type::kRequest, icmp_id_, sequence};
  EthernetFrame frame;
  frame.src = config_.mac;
  frame.dst = dst_mac;
  frame.payload = packet;
  transmit(0, frame);
}

void Host::send_arp_request(net::Ipv4Addr target) {
  EthernetFrame frame;
  frame.src = config_.mac;
  frame.dst = net::MacAddr::broadcast();
  frame.payload = ArpMessage{ArpMessage::Op::kRequest, config_.mac, config_.ip,
                             net::MacAddr{}, target};
  transmit(0, frame);
}

util::SimDuration Host::processing_delay() {
  const double median_s = config_.processing_median.as_seconds_f();
  return util::SimDuration::from_seconds_f(
      rng_.lognormal(std::log(median_s), config_.processing_sigma));
}

}  // namespace rp::sim

#include "sim/link.hpp"

#include <stdexcept>

namespace rp::sim {

void Device::transmit(std::size_t ifindex, const EthernetFrame& frame) {
  if (ifindex >= attachments_.size()) return;
  const Attachment& attachment = attachments_[ifindex];
  if (attachment.link == nullptr) return;  // Unattached interface.
  attachment.link->transmit(attachment.side, frame);
}

Link::Link(Simulator& sim, util::SimDuration base_delay,
           std::unique_ptr<DelayModel> extra_delay, double loss_probability,
           util::Rng rng)
    : sim_(&sim),
      base_delay_(base_delay),
      extra_delay_(std::move(extra_delay)),
      loss_probability_(loss_probability),
      rng_(rng) {}

void Link::transmit(int from_side, const EthernetFrame& frame) {
  const int to_side = 1 - from_side;
  Device* target = device_[to_side];
  if (target == nullptr)
    throw std::logic_error("Link::transmit: unterminated link");
  if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
    ++frames_dropped_;
    return;
  }
  util::SimDuration delay = base_delay_;
  if (extra_delay_) delay += extra_delay_->sample(sim_->now(), rng_);
  // The ifindex travels as u32 so the delivery closure packs into one slab
  // slot — this is the single hottest event kind, one per frame per hop.
  const auto ifindex = static_cast<std::uint32_t>(ifindex_[to_side]);
  ++frames_delivered_;
  auto deliver = [target, ifindex, frame] { target->receive(ifindex, frame); };
  static_assert(Simulator::stored_inline<decltype(deliver)>(),
                "frame delivery must stay slab-resident (zero allocation)");
  sim_->schedule_in(delay, std::move(deliver));
}

Link& Network::connect(Device& a, Device& b, util::SimDuration base_delay,
                       std::unique_ptr<DelayModel> extra_delay,
                       double loss_probability) {
  auto link = std::make_unique<Link>(*sim_, base_delay, std::move(extra_delay),
                                     loss_probability,
                                     noise_rng_.fork(links_.size() + 1));
  Link& ref = *link;
  const std::size_t ia = a.allocate_interface();
  const std::size_t ib = b.allocate_interface();
  if (a.attachments_.size() <= ia) a.attachments_.resize(ia + 1);
  if (b.attachments_.size() <= ib) b.attachments_.resize(ib + 1);
  a.attachments_[ia] = Device::Attachment{&ref, 0};
  b.attachments_[ib] = Device::Attachment{&ref, 1};
  ref.device_[0] = &a;
  ref.ifindex_[0] = ia;
  ref.device_[1] = &b;
  ref.ifindex_[1] = ib;
  links_.push_back(std::move(link));
  return ref;
}

}  // namespace rp::sim

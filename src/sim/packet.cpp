#include "sim/packet.hpp"

namespace rp::sim {

std::string EthernetFrame::to_string() const {
  std::string out = src.to_string() + " -> " + dst.to_string();
  if (is_arp()) {
    const auto& a = arp();
    if (a.op == ArpMessage::Op::kRequest) {
      out += " ARP who-has " + a.target_ip.to_string();
    } else {
      out += " ARP " + a.sender_ip.to_string() + " is-at " +
             a.sender_mac.to_string();
    }
  } else {
    const auto& p = ipv4();
    out += " IPv4 " + p.src.to_string() + " -> " + p.dst.to_string() +
           " ttl=" + std::to_string(p.ttl);
    out += p.icmp.type == IcmpEcho::Type::kRequest ? " echo-request"
                                                   : " echo-reply";
    out += " seq=" + std::to_string(p.icmp.sequence);
  }
  return out;
}

}  // namespace rp::sim

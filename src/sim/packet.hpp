// Frame and packet formats for the layer-2/3 testbed.
//
// The testbed carries exactly the traffic the paper's method needs: ARP for
// address resolution inside the IXP peering LAN, and ICMP echo (ping) over
// IPv4. TTL semantics are modeled faithfully because the TTL-match and
// TTL-switch filters (§3.1) key on the TTL of received echo replies.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "net/ip.hpp"
#include "net/mac.hpp"

namespace rp::sim {

/// ICMP echo request/reply (the only ICMP types the testbed needs).
struct IcmpEcho {
  enum class Type { kRequest, kReply };
  Type type = Type::kRequest;
  std::uint16_t id = 0;        ///< Identifier (per pinging process).
  std::uint16_t sequence = 0;  ///< Sequence number within a ping run.
};

/// An IPv4 packet carrying ICMP.
struct Ipv4Packet {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  /// Remaining hop budget. Senders set their OS-configured initial TTL; each
  /// IP hop decrements. Inside a flat layer-2 subnet the value arrives
  /// unchanged — the invariant behind the TTL-match filter.
  std::uint8_t ttl = 64;
  IcmpEcho icmp;
};

/// ARP request/reply for IPv4-over-Ethernet resolution.
struct ArpMessage {
  enum class Op { kRequest, kReply };
  Op op = Op::kRequest;
  net::MacAddr sender_mac;
  net::Ipv4Addr sender_ip;
  net::MacAddr target_mac;  ///< Unset in requests.
  net::Ipv4Addr target_ip;
};

/// An Ethernet frame: addressing plus one of the supported payloads.
struct EthernetFrame {
  net::MacAddr src;
  net::MacAddr dst;
  std::variant<Ipv4Packet, ArpMessage> payload;

  bool is_ipv4() const { return std::holds_alternative<Ipv4Packet>(payload); }
  bool is_arp() const { return std::holds_alternative<ArpMessage>(payload); }
  const Ipv4Packet& ipv4() const { return std::get<Ipv4Packet>(payload); }
  const ArpMessage& arp() const { return std::get<ArpMessage>(payload); }

  /// Debug rendering, e.g. "02:..:01 -> ff:..:ff ARP who-has 10.0.0.2".
  std::string to_string() const;
};

}  // namespace rp::sim

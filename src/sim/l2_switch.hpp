// A learning Ethernet switch — the IXP fabric.
//
// Standard transparent-bridge behavior: learn the source MAC per ingress
// port, forward to the learned port, flood unknown unicast and broadcast.
// The peering LAN of every simulated IXP is one (or a few interconnected)
// instance(s) of this switch; a remote member's pseudowire terminates on a
// port just like a co-located member's cross-connect, which is precisely why
// remoteness is invisible at layers 2-3 and must be inferred from delay.
#pragma once

#include <unordered_map>

#include "sim/link.hpp"

namespace rp::sim {

class L2Switch : public Device {
 public:
  explicit L2Switch(std::string name) : Device(std::move(name)) {}

  void receive(std::size_t ifindex, const EthernetFrame& frame) override;
  std::size_t allocate_interface() override { return port_count_++; }

  std::size_t port_count() const { return port_count_; }
  std::size_t mac_table_size() const { return mac_table_.size(); }
  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t frames_flooded() const { return frames_flooded_; }

 private:
  std::size_t port_count_ = 0;
  std::unordered_map<net::MacAddr, std::size_t> mac_table_;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t frames_flooded_ = 0;
};

}  // namespace rp::sim

// Stochastic delay models for links: queueing jitter and congestion episodes.
//
// The paper's RTT measurements fight two delay artefacts (§3.1): transient
// congestion (handled by repeating probes and keeping the minimum) and
// persistent congestion (handled by the RTT-consistent and LG-consistent
// filters plus the high 10 ms threshold). Both artefacts are injected here so
// each counter-measure is exercised against the condition it was built for.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace rp::sim {

/// Extra per-frame delay sampled at transmission time.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual util::SimDuration sample(util::SimTime now, util::Rng& rng) = 0;
};

/// Light-tailed queueing jitter: lognormal with a microsecond-scale median.
/// Models normal switch/port queueing inside a healthy fabric.
class QueueJitter : public DelayModel {
 public:
  /// `median` is the typical extra delay; `sigma` the lognormal shape.
  QueueJitter(util::SimDuration median, double sigma);
  util::SimDuration sample(util::SimTime now, util::Rng& rng) override;

 private:
  double mu_;  ///< log(median in seconds)
  double sigma_;
};

/// Recurring congestion episodes: within configured windows, frames see an
/// extra heavy delay (e.g. several ms). Outside the windows, nothing.
class CongestionEpisodes : public DelayModel {
 public:
  struct Episode {
    util::SimTime start;
    util::SimTime end;
    /// Mean extra delay while the episode is active (exponentially
    /// distributed per frame).
    util::SimDuration mean_extra;
  };

  explicit CongestionEpisodes(std::vector<Episode> episodes);
  util::SimDuration sample(util::SimTime now, util::Rng& rng) override;

  /// Convenience: periodic daily busy-hour episodes across a whole campaign.
  static std::unique_ptr<CongestionEpisodes> daily_busy_hours(
      util::SimTime campaign_start, util::SimDuration campaign_length,
      util::SimDuration busy_start_offset, util::SimDuration busy_length,
      util::SimDuration mean_extra);

 private:
  std::vector<Episode> episodes_;
};

/// Persistent congestion: every frame sees heavy, widely dispersed extra
/// delay (a saturated port whose queue swings between deep and deeper).
/// The minimum RTT of such an interface is a lucky outlier that few other
/// samples come close to — exactly the pathology the RTT-consistent filter
/// discards. Per-frame extra delay is uniform in [min_extra, max_extra].
class PersistentCongestion : public DelayModel {
 public:
  PersistentCongestion(util::SimDuration min_extra,
                       util::SimDuration max_extra);
  /// Convenience: a default heavy sweep of [mean/3, 3 * mean].
  explicit PersistentCongestion(util::SimDuration mean_extra)
      : PersistentCongestion(mean_extra / 3, mean_extra * 3) {}
  util::SimDuration sample(util::SimTime now, util::Rng& rng) override;

 private:
  util::SimDuration min_extra_;
  util::SimDuration max_extra_;
};

/// Sums the samples of several component models.
class CompositeDelay : public DelayModel {
 public:
  explicit CompositeDelay(std::vector<std::unique_ptr<DelayModel>> parts);
  util::SimDuration sample(util::SimTime now, util::Rng& rng) override;

 private:
  std::vector<std::unique_ptr<DelayModel>> parts_;
};

}  // namespace rp::sim

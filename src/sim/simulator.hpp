// The discrete-event engine underneath the layer-2/3 testbed.
//
// A single-threaded priority-queue simulator: events are (time, action)
// pairs; ties execute in scheduling order so runs are deterministic. All
// higher-level machinery — link propagation, switch forwarding, ICMP echo
// processing, probe pacing — is expressed as scheduled events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace rp::sim {

/// Deterministic discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  util::SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (must not precede now()).
  void schedule(util::SimTime at, Action action);
  /// Schedules `action` after `delay` from now.
  void schedule_in(util::SimDuration delay, Action action);

  /// Runs until the event queue drains; returns the number of events run.
  std::size_t run();
  /// Runs events with time <= deadline; advances now() to the deadline.
  std::size_t run_until(util::SimTime deadline);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    util::SimTime at;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void execute_next();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rp::sim

// The discrete-event engine underneath the layer-2/3 testbed.
//
// Events are (time, action) pairs; ties execute in scheduling order so runs
// are deterministic. All higher-level machinery — link propagation, switch
// forwarding, ICMP echo processing, probe pacing — is expressed as scheduled
// events, and campaign throughput is bounded by this engine, so the hot path
// is built for zero per-event heap allocation:
//
//   * A scheduled callable is placed directly into a fixed 64-byte event
//     record — one pointer to a static (run, destroy) vtable plus 56 bytes
//     of inline payload, enough for every event kind the testbed schedules
//     (link delivery, switch forward, host ICMP turnaround, probe slots).
//     Oversized callables fall back to a heap box transparently; the hot
//     kinds are static_assert'd inline at their call sites.
//   * The pending set is two-tier. Near-future events (a ~4 ms calendar
//     window of 1 µs buckets) append into a calendar wheel with zero
//     comparisons, their records stored next to the bucket so a draining
//     bucket reads one compact region; a bucket is sorted once, when it
//     becomes current. Far events (probe slots seconds out, ping timeouts)
//     keep their records in a slab arena (util::SlabArena) behind an
//     indexed 4-ary min-heap of 24-byte (time, seq, ref) entries, and spill
//     into the wheel when their window arrives. Comparison-based sifts on
//     random keys are branch-misprediction-bound, so the wheel — through
//     which every hot event passes — is what buys the run-phase throughput;
//     see DESIGN.md §13 for measured numbers. Execution order is exactly
//     (time, seq) — each pop takes the min of the wheel candidate and the
//     heap top — so runs are bit-for-bit identical to a single sorted
//     queue.
//
// Observability: run()/run_until() count executed events into the
// rp.sim.events counter and expose the queue's high-water mark
// (rp.sim.queue.high_water, scheduling-dependent, excluded from determinism
// snapshots). The sim.event fault site (RP_FAULT=sim.event:<spec>) drops a
// scheduled event (throw action) or delays it by 250 ms (flip/truncate
// actions), deterministically per the armed spec.
#pragma once

#include <array>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "util/sim_time.hpp"
#include "util/slab.hpp"

namespace rp::sim {

/// Deterministic discrete-event simulator.
class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  util::SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (must not precede now()).
  /// The callable is stored inline in a slab slot when it fits
  /// (kInlinePayloadBytes, 8-byte alignment); larger captures are boxed.
  template <typename F>
  void schedule(util::SimTime at, F&& action) {
    if (at < now_)
      throw std::invalid_argument("Simulator::schedule: time in the past");
    if (fault::injection_enabled() && !fault_keep(at)) return;
    emplace_event(at, std::forward<F>(action));
  }

  /// Schedules `action` after `delay` from now.
  template <typename F>
  void schedule_in(util::SimDuration delay, F&& action) {
    schedule(now_ + delay, std::forward<F>(action));
  }

  /// Runs until the event queue drains; returns the number of events run.
  std::size_t run();
  /// Runs events with time <= deadline; advances now() to the deadline.
  std::size_t run_until(util::SimTime deadline);

  bool idle() const { return size_ == 0; }
  std::size_t pending() const { return size_; }

  /// Events executed over this simulator's lifetime (all run calls).
  std::uint64_t events_executed() const { return events_executed_; }
  /// Largest pending-event count observed so far.
  std::size_t queue_high_water() const { return queue_high_water_; }

  /// Inline payload capacity of one event slot.
  static constexpr std::size_t kInlinePayloadBytes = 56;

  /// True when `F` is stored inline (no per-event allocation). Exposed so
  /// hot call sites can static_assert their captures stay slab-resident.
  template <typename F>
  static constexpr bool stored_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= kInlinePayloadBytes &&
           alignof(Fn) <= alignof(std::max_align_t);
  }

 private:
  /// Static per-type dispatch table: run the payload, destroy the payload.
  /// `destroy` is null for trivially-destructible payloads (every hot event
  /// kind), which turns teardown into a predicted branch instead of an
  /// indirect call.
  struct EventOps {
    void (*run)(void*);
    void (*destroy)(void*);
  };

  /// One stored event: the ops pointer, then the payload at offset 8.
  /// Exactly one cache line. Records are freely relocatable — execution
  /// copies the record to the stack before running it, so a store that
  /// grows under a scheduling action never moves a live payload.
  struct EventRecord {
    const EventOps* ops;
    std::byte payload[kInlinePayloadBytes];
  };
  static_assert(sizeof(EventRecord) == 64);

  template <typename Fn>
  struct InlineOps {
    static void run(void* p) { (*static_cast<Fn*>(p))(); }
    static void destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr EventOps kOps{
        &run, std::is_trivially_destructible_v<Fn> ? nullptr : &destroy};
  };

  template <typename Fn>
  struct BoxedOps {
    static void run(void* p) { (**static_cast<Fn**>(p))(); }
    static void destroy(void* p) { delete *static_cast<Fn**>(p); }
    static constexpr EventOps kOps{&run, &destroy};
  };

  /// Queue entries are trivially copyable and carry the ordering key plus a
  /// handle to the record: a slab-arena slot for heap entries, an index
  /// into the bucket's record store for wheel entries. Records never move
  /// during sifts or bucket sorts.
  struct HeapEntry {
    std::int64_t at_ns;
    std::uint64_t seq;
    std::uint32_t ref;
  };

  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.seq < b.seq;
  }

  /// Slots are cache-line aligned so a cold event record costs one line
  /// fill, not two.
  using Arena = util::SlabArena<sizeof(EventRecord), 64>;

  /// Calendar-wheel geometry: 4096 buckets of 1024 ns cover a ~4.2 ms
  /// window. The window does not wrap; when it drains, it re-bases at the
  /// earliest pending heap event.
  static constexpr std::size_t kWheelBuckets = 4096;
  static constexpr unsigned kBucketShift = 10;  // 1024 ns per bucket.
  static constexpr std::int64_t kWheelWindowNs =
      static_cast<std::int64_t>(kWheelBuckets) << kBucketShift;

  template <typename F>
  void emplace_event(util::SimTime at, F&& action) {
    using Fn = std::decay_t<F>;
    const std::int64_t at_ns = at.count_nanos();
    EventRecord* rec;
    std::uint32_t ref;
    const std::int64_t off = at_ns - wheel_start_ns_;
    const bool near = off >= 0 && off < kWheelWindowNs;
    if (near) {
      // Near-future events live next to their bucket: draining a bucket
      // then touches one compact region instead of slots scattered across
      // the arena.
      auto& store = stores_[static_cast<std::size_t>(off >> kBucketShift)];
      ref = static_cast<std::uint32_t>(store.size());
      rec = &store.emplace_back();
    } else {
      ref = arena_.allocate();
      rec = static_cast<EventRecord*>(arena_.at(ref));
    }
    if constexpr (stored_inline<F>()) {
      rec->ops = &InlineOps<Fn>::kOps;
      ::new (static_cast<void*>(rec->payload)) Fn(std::forward<F>(action));
    } else {
      rec->ops = &BoxedOps<Fn>::kOps;
      ::new (static_cast<void*>(rec->payload))
          Fn*(new Fn(std::forward<F>(action)));
    }
    const HeapEntry entry{at_ns, next_seq_++, ref};
    if (near) {
      wheel_insert(static_cast<std::size_t>(off >> kBucketShift), entry);
    } else {
      heap_push(entry);
    }
    ++size_;
    if (size_ > queue_high_water_) queue_high_water_ = size_;
  }

  /// Applies the sim.event fault site to a scheduled event: returns false
  /// to drop it, or adjusts `at` to delay it.
  bool fault_keep(util::SimTime& at);

  /// Files a wheel entry under bucket `b` (its record is already in the
  /// bucket's store).
  void wheel_insert(std::size_t b, HeapEntry entry);
  /// Copies the record to the stack, runs it, and destroys the payload.
  void run_record(const EventRecord& rec);
  /// Makes the cursor bucket hold the earliest remaining wheel entry,
  /// sorted; refills the window from the heap when the wheel drains.
  /// Returns false when the wheel is empty (any pending events are
  /// heap stragglers).
  bool wheel_candidate();
  /// True when the earliest pending event is at or before `deadline_ns`.
  bool next_at_or_before(std::int64_t deadline_ns);
  std::size_t next_occupied_after(std::size_t bucket) const;
  void compact_cursor_bucket();

  void heap_push(HeapEntry entry);
  HeapEntry heap_pop();
  void execute_next();
  void finish_run(std::size_t executed);

  /// Far-future events (beyond the wheel window), plus stragglers scheduled
  /// behind a re-based window; ordered by (time, seq). Their records live in
  /// the slab arena.
  std::vector<HeapEntry> heap_;
  /// The calendar wheel. Buckets before the cursor are always empty; the
  /// cursor bucket may carry a consumed prefix of length current_pos_.
  /// stores_[b] holds bucket b's records in arrival order; entries_[b]
  /// refers to them by index (a consumed or erased entry leaves its record
  /// bytes in place until the bucket clears).
  std::vector<std::vector<HeapEntry>> entries_ =
      std::vector<std::vector<HeapEntry>>(kWheelBuckets);
  std::vector<std::vector<EventRecord>> stores_ =
      std::vector<std::vector<EventRecord>>(kWheelBuckets);
  std::array<std::uint64_t, kWheelBuckets / 64> occupied_{};
  std::int64_t wheel_start_ns_ = 0;
  std::size_t bucket_cursor_ = 0;
  std::size_t current_pos_ = 0;
  bool current_sorted_ = false;
  std::size_t wheel_count_ = 0;  ///< Unconsumed entries across all buckets.
  std::size_t size_ = 0;         ///< Total pending events (wheel + heap).
  Arena arena_;
  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::size_t queue_high_water_ = 0;
};

}  // namespace rp::sim

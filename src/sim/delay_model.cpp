#include "sim/delay_model.hpp"

#include <cmath>

namespace rp::sim {

QueueJitter::QueueJitter(util::SimDuration median, double sigma)
    : mu_(std::log(median.as_seconds_f())), sigma_(sigma) {}

util::SimDuration QueueJitter::sample(util::SimTime /*now*/, util::Rng& rng) {
  return util::SimDuration::from_seconds_f(rng.lognormal(mu_, sigma_));
}

CongestionEpisodes::CongestionEpisodes(std::vector<Episode> episodes)
    : episodes_(std::move(episodes)) {}

util::SimDuration CongestionEpisodes::sample(util::SimTime now,
                                             util::Rng& rng) {
  for (const auto& episode : episodes_) {
    if (now >= episode.start && now < episode.end)
      return util::SimDuration::from_seconds_f(
          rng.exponential(episode.mean_extra.as_seconds_f()));
  }
  return util::SimDuration::nanos(0);
}

std::unique_ptr<CongestionEpisodes> CongestionEpisodes::daily_busy_hours(
    util::SimTime campaign_start, util::SimDuration campaign_length,
    util::SimDuration busy_start_offset, util::SimDuration busy_length,
    util::SimDuration mean_extra) {
  std::vector<Episode> episodes;
  const auto day = util::SimDuration::days(1);
  for (util::SimDuration offset = busy_start_offset;
       offset < campaign_length; offset += day) {
    episodes.push_back(Episode{campaign_start + offset,
                               campaign_start + offset + busy_length,
                               mean_extra});
  }
  return std::make_unique<CongestionEpisodes>(std::move(episodes));
}

PersistentCongestion::PersistentCongestion(util::SimDuration min_extra,
                                           util::SimDuration max_extra)
    : min_extra_(min_extra), max_extra_(max_extra) {}

util::SimDuration PersistentCongestion::sample(util::SimTime /*now*/,
                                               util::Rng& rng) {
  return util::SimDuration::from_seconds_f(rng.uniform(
      min_extra_.as_seconds_f(), max_extra_.as_seconds_f()));
}

CompositeDelay::CompositeDelay(std::vector<std::unique_ptr<DelayModel>> parts)
    : parts_(std::move(parts)) {}

util::SimDuration CompositeDelay::sample(util::SimTime now, util::Rng& rng) {
  util::SimDuration total = util::SimDuration::nanos(0);
  for (auto& part : parts_) total += part->sample(now, rng);
  return total;
}

}  // namespace rp::sim

// Devices, interfaces, links, and the network container.
//
// A Network owns devices (switches, hosts) and the links between them. Links
// deliver Ethernet frames after a configurable one-way delay — derived from
// geography for member circuits — plus optional stochastic extra delay from a
// DelayModel and optional loss. Delivery is a scheduled simulator event, so
// the whole fabric is deterministic given the scenario seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/delay_model.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rp::sim {

class Link;
class Network;

/// Anything frames can be delivered to.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Called by a link when a frame arrives on interface `ifindex`.
  virtual void receive(std::size_t ifindex, const EthernetFrame& frame) = 0;

  /// Creates a new attachment point; the Network wires it to a link.
  virtual std::size_t allocate_interface() = 0;

 protected:
  /// Sends a frame out of interface `ifindex` (no-op if unattached).
  void transmit(std::size_t ifindex, const EthernetFrame& frame);

 private:
  friend class Network;
  struct Attachment {
    Link* link = nullptr;
    int side = 0;  ///< 0 or 1: which end of the link we are.
  };
  std::string name_;
  std::vector<Attachment> attachments_;
};

/// A point-to-point link with one-way base delay, optional stochastic extra
/// delay, and optional frame loss.
class Link {
 public:
  Link(Simulator& sim, util::SimDuration base_delay,
       std::unique_ptr<DelayModel> extra_delay, double loss_probability,
       util::Rng rng);

  util::SimDuration base_delay() const { return base_delay_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

 private:
  friend class Device;
  friend class Network;

  /// Schedules delivery of `frame` at the far end of side `from_side`.
  void transmit(int from_side, const EthernetFrame& frame);

  Simulator* sim_;
  util::SimDuration base_delay_;
  std::unique_ptr<DelayModel> extra_delay_;
  double loss_probability_;
  util::Rng rng_;
  Device* device_[2] = {nullptr, nullptr};
  std::size_t ifindex_[2] = {0, 0};
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

/// Owns the devices and links of one simulated fabric.
class Network {
 public:
  explicit Network(Simulator& sim) : sim_(&sim) {}

  Simulator& simulator() { return *sim_; }

  /// Registers a device created by the caller; the Network takes ownership.
  template <typename T, typename... Args>
  T& emplace_device(Args&&... args) {
    auto device = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *device;
    devices_.push_back(std::move(device));
    return ref;
  }

  /// Connects two devices with a fresh link; each side gets a new interface.
  Link& connect(Device& a, Device& b, util::SimDuration base_delay,
                std::unique_ptr<DelayModel> extra_delay = nullptr,
                double loss_probability = 0.0);

  std::size_t device_count() const { return devices_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// Deterministic per-link RNG seeds derive from this stream.
  void seed_noise(util::Rng rng) { noise_rng_ = rng; }

 private:
  Simulator* sim_;
  util::Rng noise_rng_{0x5eedu};
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace rp::sim

// An IP host in the peering LAN: a member-router interface or an LG server.
//
// Hosts implement just enough of the stack for the study: ARP resolution and
// ICMP echo. Reply behavior is configurable to reproduce every measurement
// artefact of §3.1 — OS-dependent initial TTLs (64/255, occasionally 32/128),
// TTL switches mid-campaign (OS changes), echo blackholing, rate-limited or
// lossy responders, processing delay, and proxied replies that take extra IP
// hops and arrive with a decremented TTL from a different source address.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/link.hpp"

namespace rp::sim {

/// Static configuration of a host.
struct HostConfig {
  std::string name;
  net::MacAddr mac;
  net::Ipv4Addr ip;
  net::Ipv4Prefix subnet;
  /// Initial TTL the host's OS stamps on generated packets (commonly 64 for
  /// Unix-likes, 255 for network gear, rarely 32/128).
  std::uint8_t initial_ttl = 64;
  /// Scheduled initial-TTL changes (time, new value): OS upgrades during the
  /// measurement period, the artefact behind the TTL-switch filter.
  std::vector<std::pair<util::SimTime, std::uint8_t>> ttl_changes;
  /// Never answer echo requests (intentional blackholing, §3.1).
  bool blackhole_icmp = false;
  /// Probability of silently dropping any single echo reply (rate limiting).
  double reply_loss_probability = 0.0;
  /// If > 0, replies are emitted after this many extra IP hops: the TTL
  /// decreases accordingly and each hop adds forwarding delay. Models the
  /// "replies from one of its other interfaces" danger of §3.1.
  int reply_extra_hops = 0;
  /// Source address stamped on replies when proxied (reply_extra_hops > 0).
  std::optional<net::Ipv4Addr> reply_src_override;
  /// Persistently inflated service for one specific requester address
  /// (e.g. the path segment toward one looking glass crosses a sick trunk
  /// in a multi-switch fabric): echo replies to that requester see this
  /// extra delay as a floor, plus exponential jitter of a quarter of it.
  /// The LG-consistent filter's target.
  std::optional<std::pair<net::Ipv4Addr, util::SimDuration>>
      per_requester_extra;
  /// Median ICMP processing delay (lognormal) before a reply leaves.
  util::SimDuration processing_median = util::SimDuration::micros(150);
  double processing_sigma = 0.3;
  /// Forwarding delay per extra IP hop for proxied replies.
  util::SimDuration per_hop_delay = util::SimDuration::micros(250);
};

/// Result of one echo probe.
struct PingOutcome {
  bool replied = false;
  util::SimDuration rtt;
  std::uint8_t reply_ttl = 0;
  net::Ipv4Addr reply_src;
  std::uint16_t sequence = 0;
};

class Host : public Device {
 public:
  Host(Simulator& sim, HostConfig config, util::Rng rng);

  void receive(std::size_t ifindex, const EthernetFrame& frame) override;
  std::size_t allocate_interface() override;

  const HostConfig& config() const { return config_; }
  /// The initial TTL in force at `now`, honoring scheduled changes.
  std::uint8_t current_initial_ttl(util::SimTime now) const;

  /// Sends one echo request to `target`; `callback` fires exactly once, with
  /// the reply or, after `timeout`, with replied == false. Unresolvable
  /// targets (no ARP answer) also report failure at the timeout.
  void ping(net::Ipv4Addr target, util::SimDuration timeout,
            std::function<void(const PingOutcome&)> callback);

  std::uint64_t echo_requests_received() const {
    return echo_requests_received_;
  }

 private:
  struct Outstanding {
    util::SimTime sent_at;
    std::function<void(const PingOutcome&)> callback;
  };
  struct PendingEcho {
    std::uint16_t sequence;
  };

  void handle_arp(const ArpMessage& arp);
  void handle_ipv4(const Ipv4Packet& packet);
  void answer_echo(const Ipv4Packet& request);
  void send_echo_to(net::MacAddr dst_mac, net::Ipv4Addr dst_ip,
                    std::uint16_t sequence);
  void send_arp_request(net::Ipv4Addr target);
  util::SimDuration processing_delay();

  Simulator* sim_;
  HostConfig config_;
  util::Rng rng_;
  bool attached_ = false;
  std::uint16_t icmp_id_;
  std::uint16_t next_sequence_ = 1;
  std::unordered_map<net::Ipv4Addr, net::MacAddr> arp_cache_;
  std::unordered_map<net::Ipv4Addr, std::vector<PendingEcho>> awaiting_arp_;
  std::unordered_map<std::uint16_t, Outstanding> outstanding_;
  std::uint64_t echo_requests_received_ = 0;
};

}  // namespace rp::sim

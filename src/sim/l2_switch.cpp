#include "sim/l2_switch.hpp"

namespace rp::sim {

void L2Switch::receive(std::size_t ifindex, const EthernetFrame& frame) {
  // Learn the sender's port (MAC moves are honored: last seen wins).
  if (!frame.src.is_multicast()) mac_table_[frame.src] = ifindex;

  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast()) {
    const auto it = mac_table_.find(frame.dst);
    if (it != mac_table_.end()) {
      if (it->second != ifindex) {
        transmit(it->second, frame);
        ++frames_forwarded_;
      }
      return;  // Destination hangs off the ingress port: filter the frame.
    }
  }
  // Broadcast, multicast, or unknown unicast: flood all other ports.
  ++frames_flooded_;
  for (std::size_t port = 0; port < port_count_; ++port)
    if (port != ifindex) transmit(port, frame);
}

}  // namespace rp::sim

#include "sim/simulator.hpp"

#include <stdexcept>

namespace rp::sim {

void Simulator::schedule(util::SimTime at, Action action) {
  if (at < now_)
    throw std::invalid_argument("Simulator::schedule: time in the past");
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

void Simulator::schedule_in(util::SimDuration delay, Action action) {
  schedule(now_ + delay, std::move(action));
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    execute_next();
    ++executed;
  }
  return executed;
}

std::size_t Simulator::run_until(util::SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    execute_next();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

void Simulator::execute_next() {
  // The queue is keyed (time, seq): same-time events run in schedule order,
  // which makes runs bit-for-bit reproducible.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  event.action();
}

}  // namespace rp::sim

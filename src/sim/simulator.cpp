#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rp::sim {
namespace {

/// How long a delayed (flip/truncate action) sim.event fault postpones the
/// event. Large against the microsecond-scale fabric delays — a delayed link
/// delivery turns the probe into an RTT outlier the §3 filters must absorb —
/// yet under the 2 s probe timeout, so delayed probe slots still complete.
constexpr util::SimDuration kFaultEventDelay = util::SimDuration::millis(250);

fault::Site& event_site() {
  static fault::Site site(fault::kSiteSimEvent);
  return site;
}

obs::Counter& events_dropped() {
  static obs::Counter dropped("rp.sim.events.dropped");
  return dropped;
}

obs::Counter& events_delayed() {
  static obs::Counter delayed("rp.sim.events.delayed");
  return delayed;
}

}  // namespace

Simulator::~Simulator() {
  // Pending events (run_until leftovers) own live payloads; destroy them
  // without running. Only the cursor bucket can carry a consumed prefix.
  const auto destroy = [](EventRecord& rec) {
    if (rec.ops->destroy != nullptr) rec.ops->destroy(rec.payload);
  };
  for (const HeapEntry& entry : heap_)
    destroy(*static_cast<EventRecord*>(arena_.at(entry.ref)));
  for (std::size_t b = 0; b < kWheelBuckets; ++b) {
    const auto& entries = entries_[b];
    for (std::size_t i = (b == bucket_cursor_) ? current_pos_ : 0;
         i < entries.size(); ++i)
      destroy(stores_[b][entries[i].ref]);
  }
}

bool Simulator::fault_keep(util::SimTime& at) {
  const auto action = event_site().fire();
  if (!action) return true;
  if (*action == fault::Action::kThrow) {
    // The default action drops the event outright: the frame is never
    // delivered, the probe slot never fires — the loss a congested fabric
    // or an overloaded LG inflicts, absorbed downstream by the §3 filters.
    events_dropped().add();
    return false;
  }
  events_delayed().add();
  at += kFaultEventDelay;
  return true;
}

void Simulator::wheel_insert(std::size_t b, HeapEntry entry) {
  auto& entries = entries_[b];
  if (b != bucket_cursor_) {
    if (b < bucket_cursor_) {
      // The cursor ran ahead of now() (a heap straggler executed, or
      // run_until skipped forward); pull it back to the new earliest
      // bucket. The old cursor bucket sheds its consumed prefix so it
      // re-sorts cleanly when the cursor returns.
      compact_cursor_bucket();
      bucket_cursor_ = b;
      current_pos_ = 0;
      current_sorted_ = false;
    }
    entries.push_back(entry);
  } else if (current_sorted_) {
    // Keep the active bucket's unconsumed suffix sorted; at >= now() and
    // a fresh seq guarantee the slot lands at or after current_pos_.
    entries.insert(std::upper_bound(entries.begin() + current_pos_,
                                    entries.end(), entry, entry_less),
                   entry);
  } else {
    entries.push_back(entry);
  }
  occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  ++wheel_count_;
}

bool Simulator::wheel_candidate() {
  for (;;) {
    if (wheel_count_ > 0) {
      auto& entries = entries_[bucket_cursor_];
      if (current_pos_ < entries.size()) {
        if (!current_sorted_) {
          // current_pos_ is 0 whenever the bucket is unsorted.
          std::sort(entries.begin(), entries.end(), entry_less);
          current_sorted_ = true;
        }
        return true;
      }
      if (!entries.empty()) {
        entries.clear();
        stores_[bucket_cursor_].clear();
        occupied_[bucket_cursor_ >> 6] &=
            ~(std::uint64_t{1} << (bucket_cursor_ & 63));
      }
      current_pos_ = 0;
      current_sorted_ = false;
      bucket_cursor_ = next_occupied_after(bucket_cursor_);
      continue;
    }
    // The wheel drained. Discard the cursor bucket's leftovers, then
    // re-base the window at the earliest pending heap event and spill
    // everything inside the new window into the buckets.
    if (!entries_[bucket_cursor_].empty()) {
      entries_[bucket_cursor_].clear();
      stores_[bucket_cursor_].clear();
      occupied_[bucket_cursor_ >> 6] &=
          ~(std::uint64_t{1} << (bucket_cursor_ & 63));
    }
    current_pos_ = 0;
    current_sorted_ = false;
    if (heap_.empty()) return false;
    wheel_start_ns_ = heap_.front().at_ns;
    bucket_cursor_ = 0;
    const std::int64_t limit = wheel_start_ns_ + kWheelWindowNs;
    while (!heap_.empty() && heap_.front().at_ns < limit) {
      HeapEntry spill = heap_pop();
      const auto b = static_cast<std::size_t>(
          (spill.at_ns - wheel_start_ns_) >> kBucketShift);
      auto& store = stores_[b];
      const auto* rec = static_cast<EventRecord*>(arena_.at(spill.ref));
      store.push_back(*rec);
      arena_.release(spill.ref);
      spill.ref = static_cast<std::uint32_t>(store.size() - 1);
      entries_[b].push_back(spill);
      occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
      ++wheel_count_;
    }
  }
}

std::size_t Simulator::next_occupied_after(std::size_t bucket) const {
  std::size_t word = (bucket + 1) >> 6;
  if (word >= occupied_.size()) return kWheelBuckets;
  std::uint64_t bits =
      occupied_[word] & (~std::uint64_t{0} << ((bucket + 1) & 63));
  for (;;) {
    if (bits != 0)
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    if (++word == occupied_.size()) return kWheelBuckets;
    bits = occupied_[word];
  }
}

void Simulator::compact_cursor_bucket() {
  auto& entries = entries_[bucket_cursor_];
  if (current_pos_ > 0) {
    // Drops only the entries; the consumed records stay in the store (their
    // payloads are already destroyed) until the bucket clears.
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(current_pos_));
    current_pos_ = 0;
  }
  if (entries.empty()) {
    stores_[bucket_cursor_].clear();
    occupied_[bucket_cursor_ >> 6] &=
        ~(std::uint64_t{1} << (bucket_cursor_ & 63));
  }
}

void Simulator::heap_push(HeapEntry entry) {
  heap_.push_back(entry);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!entry_less(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

Simulator::HeapEntry Simulator::heap_pop() {
  const HeapEntry top = heap_.front();
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the displaced tail entry down from the root, moving holes rather
    // than swapping: at most one write per level plus the final placement.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t limit = std::min(first + 4, n);
      for (std::size_t child = first + 1; child < limit; ++child)
        if (entry_less(heap_[child], heap_[best])) best = child;
      if (!entry_less(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

void Simulator::run_record(const EventRecord& rec) {
  // Run from a stack copy: the action may schedule into the record's own
  // bucket and grow the store out from under the original bytes. The copy
  // also lets a heap record's slab slot be released before the action runs.
  EventRecord local = rec;
  struct PayloadGuard {
    EventRecord* rec;
    ~PayloadGuard() {
      if (rec->ops->destroy != nullptr) rec->ops->destroy(rec->payload);
    }
  } guard{&local};
  local.ops->run(local.payload);
}

std::size_t Simulator::run() {
  obs::Span span("sim.run");
  std::size_t executed = 0;
  while (size_ > 0) {
    if (!wheel_candidate()) {
      execute_next();
      ++executed;
      continue;
    }
    auto& entries = entries_[bucket_cursor_];
    const std::int64_t bucket_end =
        wheel_start_ns_ +
        (static_cast<std::int64_t>(bucket_cursor_ + 1) << kBucketShift);
    if (!heap_.empty() && heap_.front().at_ns < bucket_end) {
      // Rare: a heap straggler interleaves with this bucket.
      execute_next();
      ++executed;
      continue;
    }
    // Drain the whole sorted bucket in one tight loop: nothing can preempt
    // it. New events land at `at >= now()`, so they hit this bucket at or
    // after current_pos_ (picked up below) or a later one; heap inserts land
    // beyond the window, which ends after this bucket. The vectors may grow
    // under an insert, so index — don't cache data pointers.
    auto& store = stores_[bucket_cursor_];
    while (current_pos_ < entries.size()) {
      const HeapEntry top = entries[current_pos_++];
      --wheel_count_;
      --size_;
      ++executed;
      now_ = util::SimTime::at(util::SimDuration::nanos(top.at_ns));
      run_record(store[top.ref]);
    }
  }
  finish_run(executed);
  return executed;
}

std::size_t Simulator::run_until(util::SimTime deadline) {
  obs::Span span("sim.run");
  const std::int64_t deadline_ns = deadline.count_nanos();
  std::size_t executed = 0;
  while (next_at_or_before(deadline_ns)) {
    execute_next();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  finish_run(executed);
  return executed;
}

bool Simulator::next_at_or_before(std::int64_t deadline_ns) {
  if (size_ == 0) return false;
  if (!wheel_candidate()) return heap_.front().at_ns <= deadline_ns;
  std::int64_t next = entries_[bucket_cursor_][current_pos_].at_ns;
  if (!heap_.empty() && heap_.front().at_ns < next) next = heap_.front().at_ns;
  return next <= deadline_ns;
}

void Simulator::execute_next() {
  // Pending events are keyed (time, seq): same-time events run in schedule
  // order, which makes runs bit-for-bit reproducible. The next event is the
  // min of the wheel candidate and the heap top — the heap can hold the
  // earlier event only when a straggler was scheduled behind the window.
  if (wheel_candidate()) {
    auto& entries = entries_[bucket_cursor_];
    if (heap_.empty() || !entry_less(heap_.front(), entries[current_pos_])) {
      const HeapEntry top = entries[current_pos_++];
      --wheel_count_;
      --size_;
      now_ = util::SimTime::at(util::SimDuration::nanos(top.at_ns));
      run_record(stores_[bucket_cursor_][top.ref]);
      return;
    }
  }
  const HeapEntry top = heap_pop();
  --size_;
  now_ = util::SimTime::at(util::SimDuration::nanos(top.at_ns));
  const auto* rec = static_cast<EventRecord*>(arena_.at(top.ref));
  EventRecord local = *rec;
  arena_.release(top.ref);
  run_record(local);
}

void Simulator::finish_run(std::size_t executed) {
  events_executed_ += executed;
  if (!obs::metrics_enabled()) return;
  static obs::Counter events("rp.sim.events");
  static obs::Gauge high_water("rp.sim.queue.high_water",
                               obs::Stability::kScheduling);
  events.add(executed);
  high_water.set(static_cast<double>(queue_high_water_));
}

}  // namespace rp::sim

// Microbenchmarks of the BGP substrate: per-destination valley-free route
// computation and full-RIB construction.
#include <benchmark/benchmark.h>

#include "bgp/rib.hpp"
#include "topology/generator.hpp"

namespace {

using namespace rp;

const topology::AsGraph& graph() {
  static const topology::AsGraph g = [] {
    topology::GeneratorConfig config;
    config.tier1_count = 6;
    config.tier2_count = 40;
    config.access_count = 300;
    config.content_count = 80;
    config.cdn_count = 10;
    config.nren_count = 10;
    config.enterprise_count = 200;
    util::Rng rng(3);
    return topology::generate_topology(config, rng);
  }();
  return g;
}

void BM_RoutesToOneDestination(benchmark::State& state) {
  const bgp::RouteComputer computer(graph());
  const net::Asn dest = graph().nodes().front().asn;
  for (auto _ : state) {
    auto routes = computer.routes_to(dest);
    benchmark::DoNotOptimize(routes);
  }
  state.counters["ases"] = static_cast<double>(graph().as_count());
}
BENCHMARK(BM_RoutesToOneDestination)->Unit(benchmark::kMicrosecond);

void BM_SingleRouteQuery(benchmark::State& state) {
  const bgp::RouteComputer computer(graph());
  const net::Asn src = graph().nodes()[10].asn;
  const net::Asn dst = graph().nodes().back().asn;
  for (auto _ : state) {
    auto route = computer.route(src, dst);
    benchmark::DoNotOptimize(route);
  }
}
BENCHMARK(BM_SingleRouteQuery)->Unit(benchmark::kMicrosecond);

void BM_BuildFullRib(benchmark::State& state) {
  net::Asn vantage;
  for (const auto& node : graph().nodes())
    if (node.cls == topology::AsClass::kNren) {
      vantage = node.asn;
      break;
    }
  for (auto _ : state) {
    auto rib = bgp::Rib::build(graph(), vantage);
    benchmark::DoNotOptimize(rib);
    state.counters["prefixes"] = static_cast<double>(rib.prefix_count());
  }
}
BENCHMARK(BM_BuildFullRib)->Unit(benchmark::kMillisecond);

void BM_RibLookup(benchmark::State& state) {
  net::Asn vantage = graph().nodes()[5].asn;
  static const bgp::Rib rib = bgp::Rib::build(graph(), vantage);
  util::Rng rng(9);
  std::vector<net::Ipv4Addr> probes;
  for (int i = 0; i < 1024; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng()) >> 1);  // Pool A.
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(rib.lookup(probes[i++ & 1023]));
}
BENCHMARK(BM_RibLookup);

}  // namespace

BENCHMARK_MAIN();

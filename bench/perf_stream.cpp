// Microbenchmarks of the rp::stream hot paths, with the two headline
// numbers the CI perf gate tracks:
//   * bins_per_sec        streaming ingest throughput (fold one BinFrame
//                         into every per-network and aggregate sketch)
//   * delta_speedup       a single-IXP what-if answered by the incremental
//                         engine vs. the batch analyzer re-unioning the
//                         reached set's coverage masks (target: >= 10x at
//                         paper scale)
// The world is the shared bench scenario (RP_BENCH_FAST shrinks it), the
// same one perf_offload measures, so the two files stay comparable.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "common.hpp"
#include "perf_json.hpp"
#include "stream/session.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rp;

void set_thread_counter(benchmark::State& state) {
  state.counters["rp_threads"] =
      static_cast<double>(util::ThreadPool::global().thread_count());
}

std::vector<net::Asn> endpoint_networks() {
  std::vector<net::Asn> networks;
  for (const auto& endpoint : bench::offload_study().analyzer().transit_endpoints())
    networks.push_back(endpoint.asn);
  return networks;
}

/// Pre-rendered frames so the ingest benchmarks time folding, not the rate
/// model. Capped to bound the benchmark's footprint; the cap covers the
/// fast world's whole span and a third of the paper month.
const std::vector<stream::BinFrame>& frames() {
  static const std::vector<stream::BinFrame> cached = [] {
    const auto& study = bench::offload_study();
    stream::RateModelBinSource source(study.rates(), endpoint_networks());
    const std::uint64_t bins =
        std::min<std::uint64_t>(source.bin_count(), 2048);
    std::vector<stream::BinFrame> out(static_cast<std::size_t>(bins));
    for (stream::BinFrame& frame : out) source.next(frame);
    return out;
  }();
  return cached;
}

util::DynamicBitset maximal_covered() {
  const auto& analyzer = bench::offload_study().analyzer();
  util::DynamicBitset covered(analyzer.transit_endpoints().size());
  const auto& masks = analyzer.coverage_masks(offload::PeerGroup::kAll);
  for (ixp::IxpId id : analyzer.all_ixps()) covered |= masks[id];
  return covered;
}

void BM_StreamIngestBins(benchmark::State& state) {
  const auto& input = frames();
  const stream::BinSchema schema{endpoint_networks()};
  std::uint64_t bins = 0;
  for (auto _ : state) {
    stream::StreamIngest ingest(schema, maximal_covered());
    for (const stream::BinFrame& frame : input) ingest.consume(frame);
    benchmark::DoNotOptimize(ingest.transit_p95(flow::Direction::kInbound));
    bins += input.size();
  }
  state.counters["bins_per_sec"] = benchmark::Counter(
      static_cast<double>(bins), benchmark::Counter::kIsRate);
  state.counters["networks"] = static_cast<double>(schema.size());
  set_thread_counter(state);
}
BENCHMARK(BM_StreamIngestBins)->Unit(benchmark::kMillisecond);

void BM_BinLogReplay(benchmark::State& state) {
  const auto path =
      std::filesystem::temp_directory_path() / "rp_perf_stream_log.rpsnap";
  {
    const auto& study = bench::offload_study();
    stream::RateModelBinSource source(study.rates(), endpoint_networks());
    const std::uint64_t bins =
        std::min<std::uint64_t>(source.bin_count(), 2048);
    stream::write_bin_log(source, bins, path);
  }
  std::uint64_t bins = 0;
  for (auto _ : state) {
    stream::BinLogSource replay(path);
    stream::BinFrame frame;
    while (replay.next(frame)) ++bins;
    benchmark::DoNotOptimize(frame);
  }
  state.counters["bins_per_sec"] = benchmark::Counter(
      static_cast<double>(bins), benchmark::Counter::kIsRate);
  state.counters["log_bytes"] =
      static_cast<double>(std::filesystem::file_size(path));
  set_thread_counter(state);
  std::filesystem::remove(path);
}
BENCHMARK(BM_BinLogReplay)->Unit(benchmark::kMillisecond);

/// One timing pass: every not-reached IXP asked as a single-IXP what-if.
/// `incremental` answers from the live covered set; the batch arm rebuilds
/// the union with analyzer.potential_at on reached + candidate.
void BM_WhatIfDeltaVsRecompute(benchmark::State& state) {
  const auto& analyzer = bench::offload_study().analyzer();
  const auto& world = bench::scenario();
  stream::IncrementalOffload engine(analyzer, world.ecosystem(),
                                    offload::PeerGroup::kAll);
  // Reached: the first five greedy picks — a realistic serve-daemon state.
  std::vector<ixp::IxpId> reached;
  for (const auto& step :
       analyzer.greedy_by_traffic(offload::PeerGroup::kAll, 5))
    reached.push_back(step.ixp_id);
  engine.reset(reached);
  std::vector<ixp::IxpId> candidates;
  for (ixp::IxpId id : analyzer.all_ixps())
    if (!engine.is_reached(id)) candidates.push_back(id);

  using clock = std::chrono::steady_clock;
  double delta_ns = 0.0;
  double full_ns = 0.0;
  std::uint64_t whatifs = 0;
  for (auto _ : state) {
    const auto t0 = clock::now();
    for (ixp::IxpId id : candidates) {
      const auto p = engine.what_if(std::span<const ixp::IxpId>{&id, 1});
      benchmark::DoNotOptimize(p);
    }
    const auto t1 = clock::now();
    std::vector<ixp::IxpId> set = reached;
    set.push_back(0);
    for (ixp::IxpId id : candidates) {
      set.back() = id;
      const auto p = analyzer.potential_at(set, offload::PeerGroup::kAll);
      benchmark::DoNotOptimize(p);
    }
    const auto t2 = clock::now();
    delta_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    full_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
    whatifs += candidates.size();
  }
  state.counters["delta_speedup"] = full_ns / delta_ns;
  state.counters["whatifs_per_sec"] =
      static_cast<double>(whatifs) / (delta_ns * 1e-9);
  state.counters["candidates"] = static_cast<double>(candidates.size());
  set_thread_counter(state);
}
BENCHMARK(BM_WhatIfDeltaVsRecompute)->Unit(benchmark::kMillisecond);

void BM_IncrementalGreedy(benchmark::State& state) {
  const auto& analyzer = bench::offload_study().analyzer();
  const auto& world = bench::scenario();
  stream::IncrementalOffload engine(analyzer, world.ecosystem(),
                                    offload::PeerGroup::kAll);
  for (auto _ : state) {
    const auto curve = engine.greedy(30);
    benchmark::DoNotOptimize(curve);
    state.counters["steps"] = static_cast<double>(curve.size());
  }
  set_thread_counter(state);
}
BENCHMARK(BM_IncrementalGreedy)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rp::bench::run_benchmarks_with_json(argc, argv, "perf_stream");
}

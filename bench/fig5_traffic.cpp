// Regenerates Fig. 5: (a) ranked per-network contributions to the vantage's
// transit-provider traffic, against the subset covered by the maximal
// offload (group 4, all IXPs); (b) the 5-minute time series of total transit
// traffic vs offload potential. Paper headlines: ~27% inbound / ~33%
// outbound offloadable; peaks of transit and offload coincide, so offload
// cuts 95th-percentile transit bills.
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 5 - network contributions and time series of transit vs offload",
      "maximal offload ~27% of inbound and ~33% of outbound transit; "
      "offload peaks coincide with transit peaks");

  const auto& study = bench::offload_study();
  const auto& analyzer = study.analyzer();

  const auto everywhere = analyzer.all_ixps();
  const auto covered =
      analyzer.covered_endpoints(everywhere, offload::PeerGroup::kAll);
  std::unordered_set<net::Asn> covered_set(covered.begin(), covered.end());

  std::cout << "transit endpoints: " << analyzer.transit_endpoints().size()
            << "; covered by maximal offload: " << covered.size() << "\n\n";

  // --- Fig. 5a: ranked contributions (sampled ranks) ---------------------
  util::TextTable fig5a({"rank", "network", "inbound", "outbound",
                         "offloadable"});
  const auto& endpoints = analyzer.transit_endpoints();
  std::vector<std::size_t> ranks{1, 2, 3, 5, 10, 20, 50, 100, 200, 500,
                                 1000, 2000};
  for (std::size_t rank : ranks) {
    if (rank > endpoints.size()) break;
    const auto& e = endpoints[rank - 1];
    fig5a.add_row({std::to_string(rank), e.asn.to_string(),
                   util::fmt_rate_bps(e.inbound_bps),
                   util::fmt_rate_bps(e.outbound_bps),
                   covered_set.contains(e.asn) ? "yes" : "no"});
  }
  fig5a.render(std::cout);

  // Offload fractions per direction.
  const auto p = analyzer.potential_at(everywhere, offload::PeerGroup::kAll);
  std::cout << "\noffload potential, inbound:  "
            << util::fmt_rate_bps(p.inbound_bps) << " of "
            << util::fmt_rate_bps(analyzer.transit_inbound_bps()) << " ("
            << util::fmt_percent(p.inbound_bps /
                                 analyzer.transit_inbound_bps())
            << "; paper ~27%)\n";
  std::cout << "offload potential, outbound: "
            << util::fmt_rate_bps(p.outbound_bps) << " of "
            << util::fmt_rate_bps(analyzer.transit_outbound_bps()) << " ("
            << util::fmt_percent(p.outbound_bps /
                                 analyzer.transit_outbound_bps())
            << "; paper ~33%)\n";

  // --- Fig. 5b: time series summary ---------------------------------------
  for (const auto dir : {flow::Direction::kInbound, flow::Direction::kOutbound}) {
    const auto series = study.time_series(dir);
    const char* label =
        dir == flow::Direction::kInbound ? "inbound" : "outbound";
    const auto transit_peak =
        *std::max_element(series.transit_bps.begin(), series.transit_bps.end());
    const auto offload_peak =
        *std::max_element(series.offload_bps.begin(), series.offload_bps.end());
    const double transit_p95 = util::p95_billing_rate(series.transit_bps);
    std::vector<double> residual(series.transit_bps.size());
    for (std::size_t i = 0; i < residual.size(); ++i)
      residual[i] = series.transit_bps[i] - series.offload_bps[i];
    const double residual_p95 = util::p95_billing_rate(residual);
    std::cout << "\n" << label << " series (" << series.transit_bps.size()
              << " five-minute bins):\n";
    std::cout << "  transit peak:             "
              << util::fmt_rate_bps(transit_peak) << "\n";
    std::cout << "  offload-potential peak:   "
              << util::fmt_rate_bps(offload_peak) << "\n";
    std::cout << "  95th-pct transit bill:    "
              << util::fmt_rate_bps(transit_p95) << "\n";
    std::cout << "  95th-pct after offload:   "
              << util::fmt_rate_bps(residual_p95) << " ("
              << util::fmt_percent(1.0 - residual_p95 / transit_p95)
              << " bill reduction)\n";
  }
  std::cout << "\n(peak coincidence means the offload reduction shows up in "
               "the 95th-percentile bill, Fig. 5b's point)\n";
  return 0;
}

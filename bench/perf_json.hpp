// Shared main() replacement for the perf_* binaries: runs the registered
// google-benchmark suite with the normal console output, then writes a
// machine-readable BENCH_<name>.json trajectory file built on the rp::obs
// JSON helpers. Keys are flat and stable:
//   "<benchmark>.real_time_<unit>"  per-iteration real time (benchmark unit)
//   "<benchmark>.cpu_time_<unit>"   per-iteration CPU time
//   "<benchmark>.iterations"        iterations the timing covers
//   "<benchmark>.<counter>"         every user counter (rp_threads, ases, ...)
// plus, when the metrics registry is enabled (RP_METRICS=1), every
// rp.<layer>.<metric> counter accumulated across the whole run. The file
// lands in $RP_BENCH_JSON_DIR (or the cwd) as BENCH_<name>.json, so CI can
// diff trajectories run over run.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace rp::bench {

/// Console reporter that additionally collects every finished run as flat
/// JSON entries (aggregates and errored runs are skipped).
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string base = run.benchmark_name();
      const std::string unit = benchmark::GetTimeUnitString(run.time_unit);
      entries_.emplace_back(base + ".real_time_" + unit,
                            obs::json::number(run.GetAdjustedRealTime()));
      entries_.emplace_back(base + ".cpu_time_" + unit,
                            obs::json::number(run.GetAdjustedCPUTime()));
      entries_.emplace_back(
          base + ".iterations",
          obs::json::number(static_cast<std::uint64_t>(run.iterations)));
      for (const auto& [name, counter] : run.counters)
        entries_.emplace_back(base + "." + name,
                              obs::json::number(counter.value));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<obs::json::Entry>& entries() const { return entries_; }

 private:
  std::vector<obs::json::Entry> entries_;
};

/// Writes BENCH_<name>.json into $RP_BENCH_JSON_DIR (or the cwd). Returns
/// the path written, or an empty string on I/O failure.
inline std::string write_bench_json(
    const std::string& name, const std::vector<obs::json::Entry>& entries) {
  std::string dir = ".";
  if (const char* env = std::getenv("RP_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0')
    dir = env;
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return {};
  obs::json::write_flat_object(os, entries);
  return os ? path : std::string{};
}

/// Drop-in replacement for BENCHMARK_MAIN(): run the suite, then write the
/// trajectory file. RP_METRICS=1 additionally enables the rp.* registry and
/// appends its counters to the JSON.
inline int run_benchmarks_with_json(int argc, char** argv,
                                    const std::string& name) {
  if (obs::metrics_env_requested()) obs::set_metrics_enabled(true);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::vector<obs::json::Entry> entries = reporter.entries();
  if (obs::metrics_enabled()) {
    const auto metrics =
        obs::metrics_json_entries(obs::MetricsRegistry::global().snapshot());
    entries.insert(entries.end(), metrics.begin(), metrics.end());
  }
  const std::string path = write_bench_json(name, entries);
  if (path.empty()) {
    std::fprintf(stderr, "[bench] cannot write BENCH_%s.json\n", name.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return 0;
}

}  // namespace rp::bench

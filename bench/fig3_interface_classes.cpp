// Regenerates Fig. 3: per-IXP classification of the analyzed interfaces
// into the four minimum-RTT ranges (<10, 10-20, 20-50, >=50 ms). The paper
// finds remote interfaces at 20 of 22 IXPs (all but DIX-IE and CABASE) and
// intercontinental-range peering at a majority of them.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 3 - analyzed interfaces per IXP by minimum-RTT range",
      "remote interfaces at 20/22 IXPs; intercontinental (>=50 ms) peering "
      "at 12 IXPs");

  const auto& report = bench::spread_study().report();

  util::TextTable table({"IXP", "<10 ms", "10-20 ms", "20-50 ms", ">=50 ms",
                         "remote share"});
  std::size_t ixps_with_intercontinental = 0;
  for (const auto& row : report.rows()) {
    const double analyzed = static_cast<double>(row.analyzed);
    table.add_row({
        row.acronym,
        std::to_string(row.band_counts[0]),
        std::to_string(row.band_counts[1]),
        std::to_string(row.band_counts[2]),
        std::to_string(row.band_counts[3]),
        analyzed > 0
            ? util::fmt_percent(static_cast<double>(row.remote_interfaces) /
                                analyzed)
            : "-",
    });
    if (row.band_counts[3] > 0) ++ixps_with_intercontinental;
  }
  table.render(std::cout);

  std::cout << "\nIXPs with intercontinental-range (>=50 ms) interfaces: "
            << ixps_with_intercontinental << " of " << report.rows().size()
            << "  (paper: 12 of 22)\n";
  return 0;
}

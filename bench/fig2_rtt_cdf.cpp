// Regenerates Fig. 2: the cumulative distribution of minimum RTTs over all
// analyzed interfaces. The paper's shape: a majority of interfaces spread
// almost uniformly between 0.3 and 2 ms (direct peers), a declining tail
// toward and past the 10 ms remoteness threshold.
#include <iostream>

#include "common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 2 - CDF of minimum RTTs over all analyzed interfaces",
      "majority of interfaces between 0.3 and 2 ms; no direct peer above "
      "10 ms; long remote tail");

  const auto& report = bench::spread_study().report();
  const util::EmpiricalCdf cdf(report.min_rtts_ms());

  util::TextTable table({"RTT (ms)", "fraction of analyzed interfaces"});
  for (double ms : {0.1, 0.3, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0,
                    100.0, 200.0, 400.0}) {
    table.add_row({util::fmt_double(ms, 1), util::fmt_double(cdf.at(ms), 4)});
  }
  table.render(std::cout);

  std::cout << "\nquantiles:\n";
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    std::cout << "  q" << util::fmt_double(q * 100, 0) << " = "
              << util::fmt_double(cdf.quantile(q), 3) << " ms\n";
  }
  std::cout << "\nfraction below the 10 ms remoteness threshold: "
            << util::fmt_percent(cdf.at(10.0 - 1e-9)) << "\n";
  std::cout << "sample size: " << cdf.size() << " analyzed interfaces\n";
  return 0;
}

// Regenerates Fig. 10: the number of IP interfaces reachable only through
// transit providers, as the set of reached IXPs grows (greedy on that
// metric), for the four peer groups. Paper: ~2.6 billion interfaces behind
// the transit hierarchy; the first IXP (group 4) drops it to ~1 billion;
// the decline is qualitatively the same exponential pattern as Fig. 9 and
// does not depend on RedIRIS particulars.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

namespace {

std::string fmt_billions(double count) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fB", count / 1e9);
  return buf;
}

}  // namespace

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 10 - interfaces reachable only through transit vs reached IXPs",
      "~2.6B interfaces initially; ~1B after the first IXP (all policies); "
      "diminishing returns for every group");

  const auto& analyzer = bench::offload_study().analyzer();
  const double initial = analyzer.transit_addresses();
  std::cout << "interfaces reachable through the transit hierarchy: "
            << fmt_billions(initial) << "  (paper: ~2.6B)\n\n";

  const offload::PeerGroup groups[] = {
      offload::PeerGroup::kAll, offload::PeerGroup::kOpenSelective,
      offload::PeerGroup::kOpenTop10Selective, offload::PeerGroup::kOpen};
  std::vector<std::vector<offload::GreedyStep>> curves;
  for (auto group : groups)
    curves.push_back(analyzer.greedy_by_addresses(group, 30));

  util::TextTable table({"IXPs reached", "all policies", "open+selective",
                         "open+top10 sel.", "open only"});
  std::size_t longest = 0;
  for (const auto& curve : curves) longest = std::max(longest, curve.size());
  for (std::size_t step = 0; step < longest; ++step) {
    std::vector<std::string> row{std::to_string(step + 1)};
    for (const auto& curve : curves) {
      const double remaining =
          step < curve.size()
              ? curve[step].remaining
              : (curve.empty() ? initial : curve.back().remaining);
      row.push_back(fmt_billions(remaining));
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);

  if (!curves[0].empty()) {
    std::cout << "\nafter the first reached IXP (all policies): "
              << fmt_billions(curves[0][0].remaining)
              << " remain  (paper: ~1B)\n";
  }
  std::cout << "\n(unlike Fig. 9 this metric is vantage-independent: it "
               "counts cone-covered address space, not RedIRIS traffic)\n";
  return 0;
}

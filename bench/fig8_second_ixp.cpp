// Regenerates Fig. 8: the additional value of reaching a second IXP after
// fully realizing the offload potential at a first one, for the top four
// IXPs under peer group 4. Paper: after LINX, AMS-IX's remaining potential
// collapses from 1.6 Gbps to 0.2 Gbps (shared members); Terremark keeps
// most of its value (only ~50 of its 267 members overlap the big three).
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 8 - remaining potential at a second IXP after realizing a first",
      "European trio cannibalize each other; Terremark's distinct "
      "membership keeps its value");

  const auto& analyzer = bench::offload_study().analyzer();
  const auto& eco = bench::scenario().ecosystem();
  const auto group = offload::PeerGroup::kAll;

  // Top 4 IXPs by full single-IXP potential.
  std::vector<std::pair<double, ixp::IxpId>> ranked;
  for (const auto& ixp : eco.ixps()) {
    const std::vector<ixp::IxpId> just_this{ixp.id()};
    ranked.emplace_back(analyzer.potential_at(just_this, group).total_bps(),
                        ixp.id());
  }
  std::sort(ranked.rbegin(), ranked.rend());
  ranked.resize(std::min<std::size_t>(4, ranked.size()));

  std::vector<std::string> headers{"second IXP", "full"};
  for (const auto& [bps, id] : ranked)
    headers.push_back("after " + eco.ixp(id).acronym());
  util::TextTable table(std::move(headers));

  for (const auto& [full_bps, target] : ranked) {
    std::vector<std::string> row{eco.ixp(target).acronym(),
                                 util::fmt_rate_bps(full_bps)};
    for (const auto& [first_bps, first] : ranked) {
      if (first == target) {
        row.push_back("-");
        continue;
      }
      const std::vector<ixp::IxpId> already{first};
      const auto remaining =
          analyzer.remaining_potential_at(target, already, group);
      row.push_back(util::fmt_rate_bps(remaining.total_bps()));
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);

  std::cout << "\n(each cell: potential left at the row IXP after fully "
               "realizing the column IXP's potential)\n";
  return 0;
}

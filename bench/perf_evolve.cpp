// perf_evolve — the epoch-overlay perf gate (DESIGN.md §17).
//
// Replays a programmatic 24-epoch growth timeline over the paper-scale world
// two ways and times both arms:
//
//   overlay arm  — one base Scenario::build, then EpochTimeline walks every
//                  epoch as a copy-on-write ecosystem overlay (the engine
//                  rpevolve/rpsweep/rpserve all use);
//   rebuild arm  — evolve::rebuild_state_at on a sample of epochs (each one
//                  pays a fresh world build), extrapolated to all epochs.
//
// Output: a human summary on stdout and BENCH_perf_evolve.json in
// $RP_BENCH_JSON_DIR (or the cwd) with flat keys:
//   epochs, events, base_build_ms, overlay_ms (base build + full walk),
//   rebuild_ms (extrapolated), epochs_per_sec, overlay_speedup
// The gate (scripts/check_bench.py) holds epochs_per_sec and
// overlay_speedup to the committed baseline; the binary itself fails when
// the overlay is not at least 5x faster than per-epoch rebuilds — the
// ISSUE's acceptance floor. RP_BENCH_FAST=1 shrinks the world, not the
// timeline.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "evolve/engine.hpp"
#include "evolve/timeline.hpp"
#include "obs/json.hpp"

namespace {

bool fast_mode() {
  const char* v = std::getenv("RP_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// A decade-and-change of churn: every epoch joins members at a rotating
// Table 1 exchange and grows traffic; every few epochs prices decay or a
// port generation upgrades — the same event mix examples/timelines uses.
std::string timeline_text(bool fast, std::size_t epochs) {
  static const char* kIxps[] = {"AMS-IX", "DE-CIX", "LINX",      "HKIX",
                                "NYIIX",  "MSK-IX", "France-IX", "PLIX"};
  constexpr std::size_t kIxpCount = sizeof(kIxps) / sizeof(kIxps[0]);
  std::ostringstream out;
  out << "name perf-evolve\n";
  if (fast) out << "fast 1\n";
  for (std::size_t e = 0; e < epochs; ++e) {
    out << "epoch y" << e << "\n";
    out << "join " << kIxps[e % kIxpCount] << " 3 0.5\n";
    out << "traffic 1.02\n";
    if (e % 5 == 2) out << "price-decay 0.97\n";
    if (e % 7 == 3) out << "capacity " << kIxps[(e + 1) % kIxpCount] << " 1.1\n";
  }
  return out.str();
}

}  // namespace

int main() {
  const std::size_t epochs = 24;
  const std::string text = timeline_text(fast_mode(), epochs);
  const rp::evolve::Timeline timeline = rp::evolve::parse_timeline(text);

  auto t0 = std::chrono::steady_clock::now();
  const rp::core::Scenario base =
      rp::core::Scenario::build(timeline.base_config());
  const double base_build_ms = ms_since(t0);

  // Overlay arm: the walk is cumulative, so touching the last epoch applies
  // every event once; touching them all in order is the replay access
  // pattern. The interface tally keeps the loop observable.
  t0 = std::chrono::steady_clock::now();
  rp::evolve::EpochTimeline engine(timeline, base);
  std::size_t interfaces = 0;
  for (std::size_t k = 0; k < engine.epoch_count(); ++k)
    for (const rp::ixp::Ixp& ixp : engine.state_at(k).ecosystem.ixps())
      interfaces += ixp.interfaces().size();
  const double walk_ms = ms_since(t0);
  const double overlay_ms = base_build_ms + walk_ms;

  // Rebuild arm: each sampled epoch pays a full Scenario::build plus the
  // event replay from scratch; the per-epoch cost is build-dominated and
  // flat, so a 3-epoch sample extrapolates faithfully.
  const std::size_t samples = epochs < 3 ? epochs : 3;
  const std::vector<std::size_t> sample_ks = {0, epochs / 2, epochs - 1};
  t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < samples; ++s)
    interfaces += rp::evolve::rebuild_state_at(timeline, sample_ks[s])
                      .ecosystem.ixps()
                      .size();
  const double rebuild_ms =
      ms_since(t0) / static_cast<double>(samples) * static_cast<double>(epochs);

  const double epochs_per_sec =
      overlay_ms > 0.0 ? static_cast<double>(epochs) / (overlay_ms / 1e3) : 0.0;
  const double overlay_speedup = overlay_ms > 0.0 ? rebuild_ms / overlay_ms : 0.0;

  std::printf("perf_evolve: %zu epochs, %zu events%s (tally %zu)\n", epochs,
              timeline.event_count(), fast_mode() ? " [fast]" : "",
              interfaces);
  std::printf("  base build      %.1f ms\n", base_build_ms);
  std::printf("  overlay walk    %.1f ms (%.1f ms with base build)\n", walk_ms,
              overlay_ms);
  std::printf("  rebuild (extrap) %.1f ms over %zu sampled epochs\n",
              rebuild_ms, samples);
  std::printf("  epochs/sec      %.1f\n", epochs_per_sec);
  std::printf("  overlay speedup %.1fx\n", overlay_speedup);

  std::vector<rp::obs::json::Entry> entries;
  entries.emplace_back(
      "epochs", rp::obs::json::number(static_cast<std::uint64_t>(epochs)));
  entries.emplace_back("events",
                       rp::obs::json::number(static_cast<std::uint64_t>(
                           timeline.event_count())));
  entries.emplace_back("base_build_ms", rp::obs::json::number(base_build_ms));
  entries.emplace_back("overlay_ms", rp::obs::json::number(overlay_ms));
  entries.emplace_back("rebuild_ms", rp::obs::json::number(rebuild_ms));
  entries.emplace_back("epochs_per_sec",
                       rp::obs::json::number(epochs_per_sec));
  entries.emplace_back("overlay_speedup",
                       rp::obs::json::number(overlay_speedup));

  std::string dir = ".";
  if (const char* env = std::getenv("RP_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0')
    dir = env;
  const std::string path = dir + "/BENCH_perf_evolve.json";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return 1;
  }
  rp::obs::json::write_flat_object(os, entries);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());

  if (overlay_speedup < 5.0) {
    std::fprintf(stderr,
                 "perf_evolve: overlay speedup %.2fx below the 5x floor\n",
                 overlay_speedup);
    return 1;
  }
  return 0;
}

// Regenerates the §5 viability region (eq. 14) as a 2-D sweep over the
// decay b and the remote/direct fixed-cost ratio h/g, through the rp::sweep
// engine: a generated spec with axes econ.b × econ.h is expanded and every
// run evaluated against the shared world's greedy curve. The verdict table
// is printed twice — as a console table and as the markdown block
// EXPERIMENTS.md's §5 sensitivity subsection embeds. Note the region itself
// is a pure function of the prices (b is an explicit axis here), so the
// table is identical at fast and paper scale; the world only contributes
// the fitted-b reference point reported above it.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Eq. 14 viability region - 2-D sweep over (b, h/g)",
      "remote peering viable iff g(p-v)/(h(p-u)) >= e^b; boundary at "
      "b* = ln(ratio)");

  const std::vector<double> decays{0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  const std::vector<double> ratios{0.1, 0.15, 0.3, 0.5, 0.8};
  const econ::CostParameters defaults;  // p=1 g=0.02 u=0.2 v=0.45.

  // The grid as a sweep spec (exercising the same spec/expansion path the
  // rpsweep CLI uses); h values derive from the h/g ratios.
  std::string spec_text =
      "name viability-region\n"
      "group 4\n"
      "steps 30\n"
      "axis econ.b";
  for (const double b : decays) spec_text += " " + std::to_string(b);
  spec_text += "\naxis econ.h";
  for (const double r : ratios)
    spec_text += " " + std::to_string(r * defaults.direct_fixed);
  spec_text += "\n";
  const sweep::SweepSpec spec = sweep::parse_sweep_spec(spec_text);
  const std::vector<sweep::SweepRun> runs = sweep::expand_runs(spec);

  // One shared world: the fitted-b reference point the region is read
  // against (eq_viability reports the same fit in detail).
  const sweep::WorldArtifacts artifacts = sweep::world_artifacts(
      bench::offload_study(), offload::PeerGroup::kAll, 30);
  {
    const auto fitted = core::ViabilityStudy::from_greedy_curve(
        artifacts.curve, artifacts.initial_bps, defaults);
    std::printf(
        "world: fitted decay b = %.3f at h/g = %.2f -> viability ratio "
        "%.2f, critical b* = %.3f\n\n",
        fitted.fitted_decay(),
        defaults.remote_fixed / defaults.direct_fixed,
        fitted.model().viability_ratio(), fitted.model().critical_decay());
  }

  // Evaluate the grid (last axis fastest: runs are row-major in b, h).
  std::vector<sweep::RunResult> results;
  results.reserve(runs.size());
  for (const auto& run : runs)
    results.push_back(sweep::evaluate_run(spec, run, artifacts));

  const auto cell = [&](std::size_t bi, std::size_t ri) -> std::string {
    const auto& r = results[bi * ratios.size() + ri];
    if (r.status != "ok") return "(invalid)";
    if (!r.viable) return "no";
    char text[32];
    std::snprintf(text, sizeof text, "m~=%.2f", r.optimal_m);
    return text;
  };

  std::vector<std::string> header{"b \\ h/g"};
  for (const double r : ratios) {
    char text[16];
    std::snprintf(text, sizeof text, "%.2f", r);
    header.push_back(text);
  }
  util::TextTable table(header);
  for (std::size_t bi = 0; bi < decays.size(); ++bi) {
    std::vector<std::string> row;
    char text[16];
    std::snprintf(text, sizeof text, "%.2f", decays[bi]);
    row.push_back(text);
    for (std::size_t ri = 0; ri < ratios.size(); ++ri)
      row.push_back(cell(bi, ri));
    table.add_row(row);
  }
  table.render(std::cout);

  // The markdown block EXPERIMENTS.md §5 embeds.
  std::printf("\nmarkdown for EXPERIMENTS.md:\n\n");
  std::printf("| b \\\\ h/g |");
  for (const double r : ratios) std::printf(" %.2f |", r);
  std::printf("\n|---|");
  for (std::size_t i = 0; i < ratios.size(); ++i) std::printf("---|");
  std::printf("\n");
  for (std::size_t bi = 0; bi < decays.size(); ++bi) {
    std::printf("| %.2f |", decays[bi]);
    for (std::size_t ri = 0; ri < ratios.size(); ++ri)
      std::printf(" %s |", cell(bi, ri).c_str());
    std::printf("\n");
  }
  std::printf(
      "\n(viable cells show the eq. 13 optimum m~; the boundary tracks "
      "b* = ln(g(p-v)/(h(p-u))) exactly)\n");
  return 0;
}

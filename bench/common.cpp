#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/config_fields.hpp"
#include "io/snapshot.hpp"

namespace rp::bench {

bool fast_mode() {
  const char* value = std::getenv("RP_BENCH_FAST");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

core::ScenarioConfig scenario_config() {
  core::ScenarioConfig config;
  config.seed = 2014;  // The paper's year; any seed reproduces bit-for-bit.
  config.euroix = true;
  if (fast_mode()) core::apply_fast_mode(config);
  return config;
}

const core::Scenario& scenario() {
  static const core::Scenario world = [] {
    core::SnapshotCacheResult cache;
    core::Scenario built = core::Scenario::build_cached(
        scenario_config(), io::default_cache_dir(), &cache);
    std::fprintf(stderr, "[bench] %s %s scenario (%s)\n",
                 cache.outcome == core::SnapshotCacheResult::Outcome::kHit
                     ? "loaded snapshot of"
                     : "built",
                 fast_mode() ? "fast" : "paper-scale",
                 cache.path.string().c_str());
    return built;
  }();
  return world;
}

const core::SpreadStudy& spread_study() {
  static const core::SpreadStudy study = [] {
    core::SpreadStudyConfig config;
    // Collect the §3.3 route-server cross-check everywhere (the paper had
    // it only at TorIX; the simulator gives it to us for free).
    config.campaign.route_server_crosscheck = true;
    if (fast_mode()) {
      config.campaign.length = util::SimDuration::days(7);
      config.campaign.queries_per_pch_lg = 4;
      config.campaign.queries_per_ripe_lg = 3;
    }
    std::fprintf(stderr, "[bench] running measurement campaigns at %zu IXPs...\n",
                 scenario().measured_ixps().size());
    return core::SpreadStudy::run(scenario(), config);
  }();
  return study;
}

const core::OffloadStudy& offload_study() {
  static const core::OffloadStudy study = [] {
    core::OffloadStudyConfig config;
    if (fast_mode()) config.rate_model.span = util::SimDuration::days(7);
    std::fprintf(stderr, "[bench] building traffic matrix, RIB, and offload "
                         "analyzer...\n");
    return core::OffloadStudy::run(scenario(), config);
  }();
  return study;
}

void print_header(const std::string& artefact,
                  const std::string& paper_note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("==============================================================\n");
}

}  // namespace rp::bench

// perf_serve — the rp::serve load generator and perf gate.
//
// Starts an in-process daemon on an ephemeral loopback port, warms one fast
// world, then hammers it from N concurrent client connections with a fixed
// per-client request mix (ping / world-info / viability / offload-curve).
// Latency is measured client-side per request, so the reported p50/p99 are
// exact order statistics, not histogram estimates; the server-side
// rp.serve.* histograms (batch occupancy, request/exec time) ride along in
// the JSON when available.
//
// Output: a human summary on stdout and BENCH_perf_serve.json in
// $RP_BENCH_JSON_DIR (or the cwd) with flat keys:
//   requests_per_sec, p50_us, p99_us, clients, requests_total,
//   requests_failed, batch_occupancy_mean, batch_occupancy_max,
//   phase_connect_s (all clients connected), phase_issue_s (the measured
//   load window), phase_drain_s (daemon.stop(): drain + join)
// RP_BENCH_FAST=1 shrinks the run (fewer clients, fewer requests);
// RP_THREADS sizes the daemon's execution pool as everywhere else.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"

namespace {

bool fast_mode() {
  const char* v = std::getenv("RP_BENCH_FAST");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

double exact_quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t rank = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_us.size())));
  return sorted_us[rank];
}

rp::serve::Request make_request(std::size_t i) {
  rp::serve::Request request;
  request.id = i;
  request.world.fast = true;
  switch (i % 4) {
    case 0:
      request.type = rp::serve::RequestType::kPing;
      request.token = "perf";
      break;
    case 1:
      request.type = rp::serve::RequestType::kWorldInfo;
      break;
    case 2:
      request.type = rp::serve::RequestType::kViability;
      break;
    default:
      request.type = rp::serve::RequestType::kOffloadCurve;
      request.max_steps = 4;
      break;
  }
  return request;
}

}  // namespace

int main() {
  rp::obs::set_metrics_enabled(true);

  const std::size_t clients = fast_mode() ? 4 : 8;
  const std::size_t per_client = fast_mode() ? 50 : 200;

  rp::serve::DaemonConfig config;
  config.port = 0;
  config.worlds = 2;
  rp::serve::Daemon daemon(std::move(config));
  daemon.start();
  const std::uint16_t port = daemon.port();

  // Warm the world (and its offload study + greedy curve) outside the
  // measured window: the gate measures steady-state service, not the first
  // build.
  {
    rp::serve::Client warm = rp::serve::Client::connect("127.0.0.1", port);
    rp::serve::Request request = make_request(1);  // world-info
    warm.call(request);
    request = make_request(2);  // viability (greedy curve)
    warm.call(request);
    request = make_request(3);  // offload curve
    warm.call(request);
  }

  // Phase 1 — connect: every client socket established before the first
  // measured request, so connect cost never pollutes request latency.
  const auto connect_begin = std::chrono::steady_clock::now();
  std::vector<rp::serve::Client> connections;
  connections.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c)
    connections.push_back(rp::serve::Client::connect("127.0.0.1", port));
  const double phase_connect_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    connect_begin)
          .count();

  // Phase 2 — issue: the measured load window.
  std::vector<std::vector<double>> latencies_us(clients);
  std::vector<std::size_t> failures(clients, 0);
  const auto begin = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([c, per_client, &connections, &latencies_us,
                            &failures] {
        rp::serve::Client& client = connections[c];
        latencies_us[c].reserve(per_client);
        for (std::size_t i = 0; i < per_client; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          const rp::serve::Response response =
              client.call(make_request(c * per_client + i));
          const auto t1 = std::chrono::steady_clock::now();
          if (response.status != rp::serve::Status::kOk) ++failures[c];
          latencies_us[c].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> all_us;
  std::size_t failed = 0;
  for (std::size_t c = 0; c < clients; ++c) {
    all_us.insert(all_us.end(), latencies_us[c].begin(),
                  latencies_us[c].end());
    failed += failures[c];
  }
  std::sort(all_us.begin(), all_us.end());
  const double p50 = exact_quantile(all_us, 0.50);
  const double p99 = exact_quantile(all_us, 0.99);
  const double rps =
      elapsed_s > 0.0 ? static_cast<double>(all_us.size()) / elapsed_s : 0.0;

  double occupancy_mean = 0.0;
  double occupancy_max = 0.0;
  for (const auto& metric :
       rp::obs::MetricsRegistry::global().snapshot()) {
    if (metric.name == "rp.serve.batch.occupancy") {
      occupancy_mean = metric.mean();
      occupancy_max = static_cast<double>(metric.max);
    }
  }

  // Phase 3 — drain: close the client side, then time daemon.stop() (queue
  // drain + thread joins).
  connections.clear();
  const auto drain_begin = std::chrono::steady_clock::now();
  daemon.stop();
  const double phase_drain_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_begin)
          .count();

  std::printf("perf_serve: %zu clients x %zu requests over loopback\n",
              clients, per_client);
  std::printf("  requests/sec  %.0f\n", rps);
  std::printf("  p50 latency   %.1f us\n", p50);
  std::printf("  p99 latency   %.1f us\n", p99);
  std::printf("  failed        %zu\n", failed);
  std::printf("  batch occupancy mean %.2f, max %.0f\n", occupancy_mean,
              occupancy_max);
  std::printf("  phases: connect %.3fs, issue %.3fs, drain %.3fs\n",
              phase_connect_s, elapsed_s, phase_drain_s);

  std::vector<rp::obs::json::Entry> entries;
  entries.emplace_back("requests_per_sec", rp::obs::json::number(rps));
  entries.emplace_back("p50_us", rp::obs::json::number(p50));
  entries.emplace_back("p99_us", rp::obs::json::number(p99));
  entries.emplace_back(
      "clients", rp::obs::json::number(static_cast<std::uint64_t>(clients)));
  entries.emplace_back("requests_total",
                       rp::obs::json::number(
                           static_cast<std::uint64_t>(all_us.size())));
  entries.emplace_back(
      "requests_failed",
      rp::obs::json::number(static_cast<std::uint64_t>(failed)));
  entries.emplace_back("batch_occupancy_mean",
                       rp::obs::json::number(occupancy_mean));
  entries.emplace_back("batch_occupancy_max",
                       rp::obs::json::number(occupancy_max));
  entries.emplace_back("phase_connect_s",
                       rp::obs::json::number(phase_connect_s));
  entries.emplace_back("phase_issue_s", rp::obs::json::number(elapsed_s));
  entries.emplace_back("phase_drain_s", rp::obs::json::number(phase_drain_s));

  std::string dir = ".";
  if (const char* env = std::getenv("RP_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0')
    dir = env;
  const std::string path = dir + "/BENCH_perf_serve.json";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return 1;
  }
  rp::obs::json::write_flat_object(os, entries);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return failed == 0 ? 0 : 1;
}

// Quantifies the paper's headline (§1, §6): remote peering means more
// peering WITHOUT Internet flattening.
//
// The vantage adopts remote peering at its greedy-best IXPs. On layer 3 the
// offloaded paths bypass the transit provider — a BGP-based study would
// report the Internet getting flatter. The organization-level view adds the
// layer-2 entities that now mediate each path (the IXP fabric and the
// remote-peering circuits), and the flattening disappears. Also reports the
// §6 reliability implication: transit + remote peering bought from the same
// organization is not redundant.
#include <iostream>

#include "common.hpp"
#include "layer2/entity_path.hpp"
#include "layer2/risk.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Layer-2-aware path accounting - more peering without flattening",
      "§1/§6: remote peering bypasses layer-3 transit but inserts layer-2 "
      "organizations that BGP cannot see");

  const auto& world = bench::scenario();
  const auto& study = bench::offload_study();
  const auto& analyzer = study.analyzer();

  layer2::FlatteningStudy flattening(world.graph(), world.ecosystem(),
                                     world.vantage(), study.rib(), analyzer);

  // Adopt remote peering at the greedy-best five IXPs (the paper: "reaching
  // only 5 IXPs realizes most of the overall offload potential").
  const auto steps =
      analyzer.greedy_by_traffic(offload::PeerGroup::kAll, 5);
  std::vector<ixp::IxpId> reached;
  std::cout << "adopted remote peering at:";
  for (const auto& step : steps) {
    reached.push_back(step.ixp_id);
    std::cout << " " << step.acronym;
  }
  std::cout << "\n\n";

  util::TextTable table({"peer group", "offloaded flows", "L3 before",
                         "L3 after", "org before", "org after",
                         "L3 flatter", "org not flatter", "invisible/flow"});
  for (auto group : {offload::PeerGroup::kOpen, offload::PeerGroup::kAll}) {
    const auto report = flattening.compare(reached, group);
    table.add_row({
        to_string(group),
        std::to_string(report.flows),
        util::fmt_double(report.mean_l3_before, 2),
        util::fmt_double(report.mean_l3_after, 2),
        util::fmt_double(report.mean_org_before, 2),
        util::fmt_double(report.mean_org_after, 2),
        util::fmt_percent(report.flows > 0
                              ? static_cast<double>(report.l3_flatter) /
                                    static_cast<double>(report.flows)
                              : 0.0),
        util::fmt_percent(report.flows > 0
                              ? static_cast<double>(report.org_not_flatter) /
                                    static_cast<double>(report.flows)
                              : 0.0),
        util::fmt_double(report.mean_invisible_after, 2),
    });
  }
  table.render(std::cout);
  std::cout <<
      "\nreading: layer-3 intermediary counts drop on (almost) every "
      "offloaded\npath, but organization-level counts do not — the bypassed "
      "transit\nprovider is replaced by the IXP fabric and the remote-peering "
      "circuit,\nboth invisible to BGP and traceroute (the accountability "
      "concern of §6).\n";

  // --- §6 reliability: multihoming with a conflated provider ----------------
  std::cout << "\nmultihoming reliability under single-organization "
               "failures:\n";
  layer2::MultihomingRiskStudy risk(world.graph(), world.ecosystem(),
                                    world.vantage(), analyzer);
  util::TextTable risk_table({"procurement", "worst-case surviving traffic",
                              "worst-case failure"});
  for (auto procurement :
       {layer2::Procurement::kDualTransit,
        layer2::Procurement::kTransitPlusIndependentRemote,
        layer2::Procurement::kTransitPlusConflatedRemote}) {
    const auto report = risk.evaluate(procurement, reached,
                                      offload::PeerGroup::kAll, 0);
    risk_table.add_row({to_string(procurement),
                        util::fmt_percent(report.worst_case_surviving),
                        report.worst_case_organization.empty()
                            ? "-"
                            : report.worst_case_organization});
  }
  risk_table.render(std::cout);
  std::cout << "\n(the §6 warning quantified: when one organization operates "
               "both the\ntransit service and the remote-peering circuits, "
               "the layer-3 view shows\ntwo independent paths but a single "
               "failure takes down both)\n";
  return 0;
}

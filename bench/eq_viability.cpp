// Regenerates the §5 economic analysis: fits the decay parameter b (eq. 3)
// from the Fig. 9 greedy curve, evaluates the closed forms ñ (eq. 11) and
// m̃ (eq. 13), checks them numerically, and sweeps b across the viability
// boundary of eq. 14. Also reports the greedy-vs-exhaustive ablation for
// small IXP subsets (DESIGN.md ablation: diminishing returns make greedy
// near-optimal) and the exponential-fit quality ablation.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "util/table.hpp"

namespace {

using namespace rp;

/// Exhaustive best coverage over all k-subsets of the top IXP candidates
/// (small k only), to score the greedy heuristic.
double best_coverage_of_k(const offload::OffloadAnalyzer& analyzer,
                          const std::vector<ixp::IxpId>& candidates,
                          std::size_t k) {
  double best = 0.0;
  std::vector<ixp::IxpId> subset(k);
  // Enumerate k-combinations by index.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    for (std::size_t i = 0; i < k; ++i) subset[i] = candidates[idx[i]];
    best = std::max(best, analyzer
                              .potential_at(subset, offload::PeerGroup::kAll)
                              .total_bps());
    // Next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + candidates.size() - k) break;
      if (i == 0) return best;
    }
    ++idx[i];
    for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Eqs. 11/13/14 - economic viability of remote peering",
      "t = exp(-b(n+m)); closed-form n~, m~; viable iff "
      "g(p-v)/(h(p-u)) >= e^b");

  const auto& analyzer = bench::offload_study().analyzer();
  const auto steps =
      analyzer.greedy_by_traffic(offload::PeerGroup::kAll, 30);
  const double initial =
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();

  // --- Fit b from the empirical Fig. 9 curve ------------------------------
  econ::CostParameters prices;  // Defaults: p=1, g=0.02, u=0.2, h=0.006, v=0.45.
  const auto study =
      core::ViabilityStudy::from_greedy_curve(steps, initial, prices);
  std::cout << "decay b fitted from the greedy offload curve: "
            << util::fmt_double(study.fitted_decay(), 4) << "\n";

  // Fit-quality ablation: eq. 3 (floor-normalized, the way the study fits
  // it) against the simulated Fig. 9 curve.
  {
    std::vector<double> fractions{1.0};
    for (const auto& step : steps)
      fractions.push_back(step.remaining / initial);
    double floor_fraction = 1.0;
    for (double f : fractions) floor_fraction = std::min(floor_fraction, f);
    double worst_abs_error = 0.0;
    for (std::size_t k = 0; k < fractions.size(); ++k) {
      const double predicted =
          floor_fraction +
          (1.0 - floor_fraction) *
              std::exp(-study.fitted_decay() * static_cast<double>(k));
      worst_abs_error =
          std::max(worst_abs_error, std::abs(predicted - fractions[k]));
    }
    std::cout << "exponential-fit worst absolute error over the curve: "
              << util::fmt_double(worst_abs_error, 4)
              << " (ablation: eq. 3 as a model of Fig. 9; achievable floor "
              << util::fmt_percent(floor_fraction) << ")\n";
  }

  // --- Closed forms and numeric cross-check -------------------------------
  const auto& model = study.model();
  std::cout << "\ncost parameters: p=" << model.params().transit_price
            << " g=" << model.params().direct_fixed
            << " u=" << model.params().direct_unit
            << " h=" << model.params().remote_fixed
            << " v=" << model.params().remote_unit
            << " b=" << util::fmt_double(model.params().decay, 4) << "\n";
  std::cout << "eq. 11: n~ = " << util::fmt_double(study.optimal_direct_n(), 3)
            << " directly reached IXPs, offloading "
            << util::fmt_percent(study.optimal_direct_fraction()) << "\n";
  std::cout << "eq. 13: m~ = " << util::fmt_double(study.optimal_remote_m(), 3)
            << " additional remotely reached IXPs\n";
  std::cout << "numeric check of m~ given n~: "
            << util::fmt_double(
                   model.numeric_optimal_m_given_n(study.optimal_direct_n()),
                   3)
            << "\n";
  std::cout << "eq. 14: viability ratio g(p-v)/(h(p-u)) = "
            << util::fmt_double(model.viability_ratio(), 3)
            << " vs e^b = " << util::fmt_double(std::exp(model.params().decay), 3)
            << " -> remote peering "
            << (study.remote_viable() ? "VIABLE" : "NOT viable") << "\n";
  std::cout << "critical decay b* = ln(ratio) = "
            << util::fmt_double(model.critical_decay(), 3) << "\n";

  // --- Viability-region sweep over b --------------------------------------
  std::cout << "\nviability sweep over b (global traffic = low b):\n";
  util::TextTable sweep({"b", "viable", "n~", "m~", "cost w/o remote",
                         "cost with remote"});
  for (const auto& point : study.sweep_decay(0.05, 2.0, 14)) {
    sweep.add_row({util::fmt_double(point.decay, 2),
                   point.viable ? "yes" : "no",
                   util::fmt_double(point.optimal_n, 2),
                   util::fmt_double(point.optimal_m, 2),
                   util::fmt_double(point.cost_without_remote, 4),
                   util::fmt_double(point.cost_with_remote, 4)});
  }
  sweep.render(std::cout);

  // --- African-market scenario (§5.2): h << g ------------------------------
  {
    econ::CostParameters africa = prices;
    africa.remote_fixed = prices.remote_fixed / 4.0;  // Local IXPs offer
                                                      // little; remote is
                                                      // comparatively cheap.
    africa.decay = study.fitted_decay();
    const econ::CostModel african_model(africa);
    std::cout << "\nAfrican-market variant (h/4): viability ratio "
              << util::fmt_double(african_model.viability_ratio(), 2)
              << " -> " << (african_model.remote_viable() ? "VIABLE" : "not viable")
              << " (paper: remote peering especially attractive in Africa)\n";
  }

  // --- Greedy vs exhaustive ablation ---------------------------------------
  {
    // Candidates: the 8 IXPs with the largest single-IXP potential.
    std::vector<std::pair<double, ixp::IxpId>> ranked;
    for (const auto& ixp : bench::scenario().ecosystem().ixps()) {
      const std::vector<ixp::IxpId> just_this{ixp.id()};
      ranked.emplace_back(
          analyzer.potential_at(just_this, offload::PeerGroup::kAll)
              .total_bps(),
          ixp.id());
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::vector<ixp::IxpId> candidates;
    for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i)
      candidates.push_back(ranked[i].second);

    std::cout << "\ngreedy vs exhaustive coverage (top-8 candidate IXPs):\n";
    for (std::size_t k = 1; k <= 4; ++k) {
      double greedy_coverage = 0.0;
      for (std::size_t i = 0; i < std::min(k, steps.size()); ++i)
        greedy_coverage += steps[i].gained;
      const double best = best_coverage_of_k(analyzer, candidates, k);
      std::cout << "  k=" << k << ": greedy "
                << util::fmt_rate_bps(greedy_coverage) << ", exhaustive "
                << util::fmt_rate_bps(best) << " (greedy/optimal = "
                << util::fmt_double(best > 0 ? greedy_coverage / best : 1.0, 4)
                << ")\n";
    }
    std::cout << "  (submodular coverage: greedy >= 1 - 1/e of optimal)\n";
  }
  return 0;
}

// Microbenchmarks of the discrete-event testbed.
//
// The event-engine benches split the two phases that matter separately —
// scheduling (arena allocate + heap push) and running (heap pop + dispatch +
// release) — and run each against BaselineSimulator, a verbatim copy of the
// engine this repository shipped before the slab/4-ary rewrite
// (std::function events in a binary std::priority_queue). Both engines
// execute identical closures over identical schedules, so the ratio between
// the events_per_sec counters is the engine speedup recorded in
// BENCH_perf_sim.json. The campaign benches cover the layered hot path: a
// switched-LAN ping round trip, a small single-IXP campaign, and the
// sharded all-IXP campaign at Euro-IX scale (and at a 12x stress scale,
// O(100k) member interfaces, when RP_BENCH_FAST is off).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common.hpp"
#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "net/subnet_allocator.hpp"
#include "perf_json.hpp"
#include "sim/host.hpp"
#include "sim/l2_switch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rp;

// The pre-rewrite engine, kept verbatim as the head-to-head baseline: one
// type-erased heap allocation per capturing event, binary-heap sifts moving
// 48-byte Event records at every level.
class BaselineSimulator {
 public:
  using Action = std::function<void()>;

  void schedule(util::SimTime at, Action action) {
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }
  void schedule_in(util::SimDuration delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  std::size_t run() {
    std::size_t executed = 0;
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.at;
      event.action();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    util::SimTime at;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
};

// Jittered delays from a fixed xorshift sequence: the queue sees the same
// interleaved (not monotonic) schedule a real campaign produces, identically
// for both engines and both phases. The census mirrors a live campaign's
// event mix: nearly every executed event is fabric-scale (a frame hop,
// switch forward, or ICMP turnaround lands microseconds out; each probe
// spawns a dozen-plus of them), while a thin control tail (probe slots,
// timeouts) lands up to a second out.
std::uint64_t next_delay_us(std::uint64_t& x) {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  if ((x & 31) == 0) return x % 1'000'000;  // control tail: <= 1 s out
  return x % 1000;                          // fabric hop: <= 1 ms out
}

// The scheduled payload is shaped like the hot frame-delivery event: a
// target pointer plus tens of bytes of frame. Everything here exceeds
// std::function's 16-byte SSO buffer, so the baseline heap-allocates per
// event — exactly what the old engine did for every frame in flight — while
// the slab engine stores it inline (the static_asserts pin that).
struct FakeFrame {
  std::uint32_t words[11];  // 44 bytes, the size of an EthernetFrame.
};

template <typename Engine>
void schedule_events(Engine& sim, std::int64_t n, std::uint64_t* sink) {
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  FakeFrame frame{};
  for (std::int64_t i = 0; i < n; ++i) {
    frame.words[0] = static_cast<std::uint32_t>(i);
    auto deliver = [sink, frame] { *sink += frame.words[0]; };
    static_assert(sim::Simulator::stored_inline<decltype(deliver)>());
    sim.schedule_in(util::SimDuration::micros(next_delay_us(x)),
                    std::move(deliver));
  }
}

// A self-rescheduling event: runs its frame-touch, then schedules its own
// successor — the dispatch + reschedule cycle every campaign event performs
// (a delivered frame begets the next hop's delivery). 56 bytes, the slab
// slot capacity and the exact size of the real frame-delivery closure.
template <typename Engine>
struct PumpEvent {
  Engine* sim;
  std::uint64_t* budget;  ///< Reschedules left across all pump chains.
  std::uint64_t* sink;
  std::uint64_t x;                ///< Per-chain jitter state.
  std::uint32_t words[6];         ///< Frame remnant: pads the event to 56 B.
  void operator()() {
    *sink += words[0];
    if (*budget == 0) return;
    --*budget;
    PumpEvent next = *this;
    next.x ^= next.x << 13;
    next.x ^= next.x >> 7;
    next.x ^= next.x << 17;
    next.words[0] = static_cast<std::uint32_t>(next.x);
    sim->schedule_in(util::SimDuration::micros(next.x % 1000),
                     std::move(next));
  }
};

template <typename Engine>
void event_schedule_phase(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      Engine sim;
      state.ResumeTiming();
      schedule_events(sim, n, &sink);
      state.PauseTiming();
      benchmark::DoNotOptimize(sim.run());  // Drain outside the timed region.
    }
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n), benchmark::Counter::kIsRate);
}

// Run phase: drain throughput. n frame-delivery events are scheduled
// outside the timed region (the schedule phase above measures that half),
// then run() dispatches all of them under the clock — the seed
// BM_EventThroughput's workload with the two halves timed separately.
template <typename Engine>
void event_run_phase(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      Engine sim;
      schedule_events(sim, n, &sink);
      state.ResumeTiming();
      benchmark::DoNotOptimize(sim.run());
      state.PauseTiming();
    }
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n), benchmark::Counter::kIsRate);
}

// Steady-state phase: a fixed population of self-rescheduling pump chains.
// Each executed event reschedules one successor until the budget drains, so
// exactly n events dispatch through a queue held at a campaign-realistic
// depth (a per-IXP campaign simulator's measured high-water is ~1.6k
// pending events — see rp.sim.queue.high_water). Per-event workload cost
// (the 56-byte closure copy and jitter arithmetic) is identical for both
// engines, so this phase bounds the end-to-end dispatch+reschedule cycle
// rather than isolating the queue.
template <typename Engine>
void event_steady_state_phase(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::uint64_t depth =
      std::min<std::uint64_t>(2048, static_cast<std::uint64_t>(n));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    state.PauseTiming();
    {
      Engine sim;
      std::uint64_t budget = static_cast<std::uint64_t>(n) - depth;
      std::uint64_t x = 0x9E3779B97F4A7C15ull;
      for (std::uint64_t c = 0; c < depth; ++c) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        PumpEvent<Engine> pump{&sim, &budget, &sink, x, {}};
        static_assert(sizeof(pump) == sim::Simulator::kInlinePayloadBytes);
        static_assert(sim::Simulator::stored_inline<decltype(pump)>());
        sim.schedule_in(util::SimDuration::micros(x % 1000), std::move(pump));
      }
      state.ResumeTiming();
      benchmark::DoNotOptimize(sim.run());
      state.PauseTiming();
    }
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n), benchmark::Counter::kIsRate);
}

void BM_EventScheduleSlab(benchmark::State& state) {
  event_schedule_phase<sim::Simulator>(state);
}
void BM_EventScheduleBaseline(benchmark::State& state) {
  event_schedule_phase<BaselineSimulator>(state);
}
void BM_EventRunSlab(benchmark::State& state) {
  event_run_phase<sim::Simulator>(state);
}
void BM_EventRunBaseline(benchmark::State& state) {
  event_run_phase<BaselineSimulator>(state);
}
void BM_EventSteadyStateSlab(benchmark::State& state) {
  event_steady_state_phase<sim::Simulator>(state);
}
void BM_EventSteadyStateBaseline(benchmark::State& state) {
  event_steady_state_phase<BaselineSimulator>(state);
}
BENCHMARK(BM_EventScheduleSlab)
    ->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventScheduleBaseline)
    ->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventRunSlab)
    ->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventRunBaseline)
    ->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventSteadyStateSlab)
    ->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventSteadyStateBaseline)
    ->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_PingRoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  sim::Network network(sim);
  auto& fabric = network.emplace_device<sim::L2Switch>("fabric");
  sim::HostConfig lg_config;
  lg_config.name = "lg";
  lg_config.mac = net::MacAddr::from_id(1);
  lg_config.ip = net::Ipv4Addr(198, 18, 0, 1);
  lg_config.subnet = net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 24);
  auto& lg = network.emplace_device<sim::Host>(sim, lg_config, util::Rng(1));
  sim::HostConfig member_config = lg_config;
  member_config.name = "member";
  member_config.mac = net::MacAddr::from_id(2);
  member_config.ip = net::Ipv4Addr(198, 18, 0, 2);
  auto& member =
      network.emplace_device<sim::Host>(sim, member_config, util::Rng(2));
  benchmark::DoNotOptimize(member);
  network.connect(fabric, lg, util::SimDuration::micros(10));
  network.connect(fabric, member, util::SimDuration::micros(50));

  for (auto _ : state) {
    bool replied = false;
    lg.ping(member_config.ip, util::SimDuration::seconds(2),
            [&replied](const sim::PingOutcome& o) { replied = o.replied; });
    sim.run();
    benchmark::DoNotOptimize(replied);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PingRoundTrip);

void BM_SmallIxpCampaign(benchmark::State& state) {
  const auto& city = geo::CityRegistry::world().at("Amsterdam");
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ixp::Ixp ixp(0, "BENCH", "Bench IXP", city, 0.5,
                 net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 23));
    net::HostAllocator addrs(ixp.peering_lan());
    ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
    for (int i = 0; i < 100; ++i) {
      ixp::MemberInterface iface;
      iface.asn = net::Asn{static_cast<std::uint32_t>(100 + i)};
      iface.addr = addrs.allocate();
      iface.mac = net::MacAddr::from_id(static_cast<std::uint32_t>(i + 1));
      iface.equipment_city = city;
      ixp.add_interface(iface);
    }
    measure::CampaignConfig config;
    config.length = util::SimDuration::days(2);
    config.queries_per_pch_lg = 3;
    util::Rng rng(42);
    state.ResumeTiming();
    auto measurement = measure::run_ixp_campaign(ixp, config, rng);
    events += measurement.events_executed;
    benchmark::DoNotOptimize(measurement);
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmallIxpCampaign)->Unit(benchmark::kMillisecond);

// Worlds for the all-IXP campaign, cached per membership-scale multiplier.
// measure_all_ixps puts a looking glass at every Euro-IX exchange (65 IXPs);
// the 12x multiplier stresses the scenario to O(100k) member interfaces.
const core::Scenario& all_ixp_world(int scale) {
  static std::map<int, core::Scenario> worlds;
  auto it = worlds.find(scale);
  if (it == worlds.end()) {
    core::ScenarioConfig config = bench::scenario_config();
    config.measure_all_ixps = true;
    config.membership_scale *= scale;
    config.member_pool_size *= scale;
    it = worlds.emplace(scale, core::Scenario::build(config)).first;
  }
  return it->second;
}

void BM_AllIxpCampaign(benchmark::State& state) {
  // In fast mode the 12x arg degrades to the 1x smoke world: the smoke lane
  // only checks that the sharded path runs and lands its JSON keys.
  const int scale = bench::fast_mode() ? 1 : static_cast<int>(state.range(0));
  const core::Scenario& world = all_ixp_world(scale);

  // A trimmed campaign: the per-interface query load is cut so the bench
  // measures engine + fabric throughput, not multiplied probe counts.
  measure::CampaignConfig config;
  config.length = util::SimDuration::days(2);
  config.queries_per_pch_lg = 2;
  config.queries_per_ripe_lg = 1;

  std::vector<const ixp::Ixp*> ixps;
  std::size_t interfaces = 0;
  for (const ixp::IxpId id : world.measured_ixps()) {
    ixps.push_back(&world.ecosystem().ixp(id));
    interfaces += world.ecosystem().ixp(id).interfaces().size();
  }

  // events_per_sec is computed against wall time by hand: the work runs on
  // pool workers, so the main thread's CPU time (what a rate counter divides
  // by) says nothing about campaign throughput.
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto results = measure::CampaignRunner::run(
        ixps, config,
        [&world](const ixp::Ixp& ixp) {
          return world.fork_rng(0x100 + ixp.id());
        });
    wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (const auto& m : results) events += m.events_executed;
    benchmark::DoNotOptimize(results);
  }
  state.counters["ixps"] = static_cast<double>(ixps.size());
  state.counters["interfaces"] = static_cast<double>(interfaces);
  state.counters["campaign_wall_s"] =
      wall_seconds / static_cast<double>(state.iterations());
  state.counters["events_per_sec"] =
      wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds : 0.0;
  state.counters["rp_threads"] =
      static_cast<double>(util::ThreadPool::global().thread_count());
}
BENCHMARK(BM_AllIxpCampaign)
    ->Arg(1)->Arg(12)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  return rp::bench::run_benchmarks_with_json(argc, argv, "perf_sim");
}

// Microbenchmarks of the discrete-event testbed: raw event throughput,
// switched-LAN ping round trips, and a full small-IXP campaign.
#include <benchmark/benchmark.h>

#include "geo/cities.hpp"
#include "measure/campaign.hpp"
#include "net/subnet_allocator.hpp"
#include "sim/host.hpp"
#include "sim/l2_switch.hpp"

namespace {

using namespace rp;

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const std::int64_t events = state.range(0);
    for (std::int64_t i = 0; i < events; ++i)
      sim.schedule_in(util::SimDuration::micros(i), [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventThroughput)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_PingRoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  sim::Network network(sim);
  auto& fabric = network.emplace_device<sim::L2Switch>("fabric");
  sim::HostConfig lg_config;
  lg_config.name = "lg";
  lg_config.mac = net::MacAddr::from_id(1);
  lg_config.ip = net::Ipv4Addr(198, 18, 0, 1);
  lg_config.subnet = net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 24);
  auto& lg = network.emplace_device<sim::Host>(sim, lg_config, util::Rng(1));
  sim::HostConfig member_config = lg_config;
  member_config.name = "member";
  member_config.mac = net::MacAddr::from_id(2);
  member_config.ip = net::Ipv4Addr(198, 18, 0, 2);
  auto& member =
      network.emplace_device<sim::Host>(sim, member_config, util::Rng(2));
  benchmark::DoNotOptimize(member);
  network.connect(fabric, lg, util::SimDuration::micros(10));
  network.connect(fabric, member, util::SimDuration::micros(50));

  for (auto _ : state) {
    bool replied = false;
    lg.ping(member_config.ip, util::SimDuration::seconds(2),
            [&replied](const sim::PingOutcome& o) { replied = o.replied; });
    sim.run();
    benchmark::DoNotOptimize(replied);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PingRoundTrip);

void BM_SmallIxpCampaign(benchmark::State& state) {
  const auto& city = geo::CityRegistry::world().at("Amsterdam");
  for (auto _ : state) {
    state.PauseTiming();
    ixp::Ixp ixp(0, "BENCH", "Bench IXP", city, 0.5,
                 net::Ipv4Prefix::make(net::Ipv4Addr(198, 18, 0, 0), 23));
    net::HostAllocator addrs(ixp.peering_lan());
    ixp.add_looking_glass(ixp::LookingGlass::pch(addrs.allocate()));
    for (int i = 0; i < 100; ++i) {
      ixp::MemberInterface iface;
      iface.asn = net::Asn{static_cast<std::uint32_t>(100 + i)};
      iface.addr = addrs.allocate();
      iface.mac = net::MacAddr::from_id(static_cast<std::uint32_t>(i + 1));
      iface.equipment_city = city;
      ixp.add_interface(iface);
    }
    measure::CampaignConfig config;
    config.length = util::SimDuration::days(2);
    config.queries_per_pch_lg = 3;
    util::Rng rng(42);
    state.ResumeTiming();
    auto measurement = measure::run_ixp_campaign(ixp, config, rng);
    benchmark::DoNotOptimize(measurement);
  }
}
BENCHMARK(BM_SmallIxpCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Regenerates Fig. 4: (a) the distribution of IXP counts for all identified
// networks and for remotely peering networks, and (b) the RTT-band mix of
// the remote networks' interfaces by IXP count. Paper: 1,904 identified
// networks, 285 remote peers, qualitatively similar count distributions,
// and the remote share of interfaces declining as the IXP count grows.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 4a/4b - IXP-count distributions and interface classes",
      "1,904 identified networks (3,242 of 4,451 interfaces mapped); 285 "
      "remote peers; majority at one IXP, tail to 18");

  const auto& report = bench::spread_study().report();

  std::cout << "identified interfaces: " << report.identified_interfaces()
            << " of " << report.total_analyzed()
            << " analyzed  (paper: 3,242 of 4,451)\n";
  std::cout << "identified networks:   " << report.identified_networks()
            << "  (paper: 1,904)\n";
  std::cout << "remote networks:       " << report.remote_networks()
            << "  (paper: 285)\n\n";

  const auto all = report.ixp_count_histogram(false);
  const auto remote = report.ixp_count_histogram(true);
  util::TextTable fig4a({"IXP count", "identified networks",
                         "remotely peering networks"});
  std::size_t max_count = 0;
  for (const auto& [count, n] : all) max_count = std::max(max_count, count);
  for (std::size_t c = 1; c <= max_count; ++c) {
    const auto in_all = all.contains(c) ? all.at(c) : 0;
    const auto in_remote = remote.contains(c) ? remote.at(c) : 0;
    if (in_all == 0 && in_remote == 0) continue;
    fig4a.add_row({std::to_string(c), std::to_string(in_all),
                   std::to_string(in_remote)});
  }
  fig4a.render(std::cout);

  std::cout << "\nFig. 4b - interface RTT-band fractions of remote networks "
               "by IXP count:\n";
  util::TextTable fig4b({"IXP count", "<10 ms", "10-20 ms", "20-50 ms",
                         ">=50 ms"});
  for (const auto& [count, fractions] :
       report.band_fractions_by_ixp_count()) {
    fig4b.add_row({std::to_string(count), util::fmt_double(fractions[0], 3),
                   util::fmt_double(fractions[1], 3),
                   util::fmt_double(fractions[2], 3),
                   util::fmt_double(fractions[3], 3)});
  }
  fig4b.render(std::cout);
  std::cout << "\n(paper: remote networks with IXP count 1 have no <10 ms "
               "interfaces; the local fraction grows with the IXP count)\n";
  return 0;
}

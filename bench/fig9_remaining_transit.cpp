// Regenerates Fig. 9: remaining transit-provider traffic as the set of
// reached IXPs grows greedily (largest remaining potential first), for all
// four peer groups. Paper: overall reduction from 8% (open only) to 25%
// (all policies); marginal utility diminishes exponentially; five IXPs
// realize most of the achievable offload.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 9 - remaining transit traffic vs number of reached IXPs",
      "reduction 8%..25% across groups; exponentially diminishing returns; "
      "~5 IXPs realize most of the potential");

  const auto& analyzer = bench::offload_study().analyzer();
  const double initial =
      analyzer.transit_inbound_bps() + analyzer.transit_outbound_bps();
  std::cout << "initial transit traffic: " << util::fmt_rate_bps(initial)
            << "\n\n";

  const offload::PeerGroup groups[] = {
      offload::PeerGroup::kAll, offload::PeerGroup::kOpenSelective,
      offload::PeerGroup::kOpenTop10Selective, offload::PeerGroup::kOpen};

  std::vector<std::vector<offload::GreedyStep>> curves;
  for (auto group : groups)
    curves.push_back(analyzer.greedy_by_traffic(group, 30));

  util::TextTable table({"IXPs reached", "all policies", "open+selective",
                         "open+top10 sel.", "open only", "IXP added (all)"});
  std::size_t longest = 0;
  for (const auto& curve : curves) longest = std::max(longest, curve.size());
  for (std::size_t step = 0; step < longest; ++step) {
    std::vector<std::string> row{std::to_string(step + 1)};
    for (const auto& curve : curves) {
      if (step < curve.size()) {
        row.push_back(util::fmt_percent(curve[step].remaining / initial));
      } else if (!curve.empty()) {
        row.push_back(util::fmt_percent(curve.back().remaining / initial));
      } else {
        row.push_back("100.0%");
      }
    }
    row.push_back(step < curves[0].size() ? curves[0][step].acronym : "-");
    table.add_row(std::move(row));
  }
  table.render(std::cout);

  std::cout << "\noverall transit reduction by group:\n";
  const char* names[] = {"all policies", "open+selective", "open+top10 sel.",
                         "open only"};
  for (std::size_t g = 0; g < curves.size(); ++g) {
    const double remaining =
        curves[g].empty() ? initial : curves[g].back().remaining;
    std::cout << "  " << names[g] << ": "
              << util::fmt_percent(1.0 - remaining / initial)
              << " (paper: 25% down to 8%)\n";
  }

  if (!curves[0].empty()) {
    double total_gain = 0.0, first5 = 0.0;
    for (std::size_t i = 0; i < curves[0].size(); ++i) {
      total_gain += curves[0][i].gained;
      if (i < 5) first5 += curves[0][i].gained;
    }
    std::cout << "\nfirst 5 IXPs realize "
              << util::fmt_percent(first5 / total_gain)
              << " of the achievable offload (paper: most of it)\n";
    std::cout << "greedy order (all policies):";
    for (std::size_t i = 0; i < std::min<std::size_t>(5, curves[0].size()); ++i)
      std::cout << " " << curves[0][i].acronym;
    std::cout << "  (paper: AMS-IX, Terremark, DE-CIX, CoreSite, ...)\n";
  }
  return 0;
}

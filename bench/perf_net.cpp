// Microbenchmarks of the address-handling substrate: parsing, prefix-trie
// inserts and longest-prefix matches — the operations on the RIB hot path.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/ip.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace {

using namespace rp;

void BM_ParseIpv4(benchmark::State& state) {
  for (auto _ : state) {
    auto a = net::Ipv4Addr::parse("203.119.45.67");
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ParseIpv4);

void BM_FormatIpv4(benchmark::State& state) {
  const net::Ipv4Addr a(203, 119, 45, 67);
  for (auto _ : state) {
    auto s = a.to_string();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FormatIpv4);

net::PrefixTrie<int> build_trie(std::size_t prefixes, util::Rng& rng) {
  net::PrefixTrie<int> trie;
  for (std::size_t i = 0; i < prefixes; ++i) {
    const auto length = static_cast<unsigned>(rng.uniform_int(8, 24));
    trie.insert(net::Ipv4Prefix::make(
                    net::Ipv4Addr{static_cast<std::uint32_t>(rng())}, length),
                static_cast<int>(i));
  }
  return trie;
}

void BM_TrieInsert(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    auto trie = build_trie(static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(trie);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000);

void BM_TrieLookup(benchmark::State& state) {
  util::Rng rng(2);
  const auto trie = build_trie(static_cast<std::size_t>(state.range(0)), rng);
  std::vector<net::Ipv4Addr> probes;
  for (int i = 0; i < 1024; ++i)
    probes.emplace_back(static_cast<std::uint32_t>(rng()));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks of the snapshot subsystem: a fresh Scenario::build against
// encoding, a cold cache write, and a snapshot load. The acceptance bar for
// the cache is BM_SnapshotLoad beating BM_ScenarioBuild by >= 5x.
//
// RP_BENCH_FAST=1 shrinks the world the same way the other benches do.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common.hpp"
#include "io/snapshot.hpp"
#include "perf_json.hpp"

namespace {

using namespace rp;

const core::ScenarioConfig& bench_config() {
  static const core::ScenarioConfig config = bench::scenario_config();
  return config;
}

/// A world built once and shared by the encode/load benchmarks (the build
/// benchmark below measures construction itself).
const core::Scenario& bench_world() {
  static const core::Scenario world = core::Scenario::build(bench_config());
  return world;
}

std::filesystem::path bench_snapshot_path() {
  static const std::filesystem::path path = [] {
    const auto file = std::filesystem::temp_directory_path() /
                      "rp_perf_io_world.rpsnap";
    io::SaveOptions options;
    options.with_cones = true;
    io::save_scenario(bench_world(), file, options);
    return file;
  }();
  return path;
}

void BM_ScenarioBuild(benchmark::State& state) {
  for (auto _ : state) {
    core::Scenario scenario = core::Scenario::build(bench_config());
    benchmark::DoNotOptimize(scenario);
    state.counters["ases"] = static_cast<double>(scenario.graph().as_count());
  }
}
BENCHMARK(BM_ScenarioBuild)->Unit(benchmark::kMillisecond);

void BM_SnapshotEncode(benchmark::State& state) {
  const core::Scenario& world = bench_world();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto image = io::encode_scenario(world);
    bytes = image.size();
    benchmark::DoNotOptimize(image);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SnapshotEncode)->Unit(benchmark::kMillisecond);

void BM_SnapshotColdWrite(benchmark::State& state) {
  const core::Scenario& world = bench_world();
  const auto path =
      std::filesystem::temp_directory_path() / "rp_perf_io_cold.rpsnap";
  for (auto _ : state) {
    io::save_scenario(world, path);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove(path);
}
BENCHMARK(BM_SnapshotColdWrite)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  const auto path = bench_snapshot_path();
  for (auto _ : state) {
    io::LoadedWorld loaded = io::load_scenario(path);
    benchmark::DoNotOptimize(loaded);
    state.counters["ases"] =
        static_cast<double>(loaded.scenario.graph().as_count());
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(std::filesystem::file_size(path)));
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rp::bench::run_benchmarks_with_json(argc, argv, "perf_io");
}

// Regenerates Table 1: the 22 measured IXPs with location, peak traffic,
// member counts, and the number of interfaces surviving the six filters —
// plus the §3.1 per-filter discard counts (paper: 20/82/20/100/28/5 for a
// total of 4,451 analyzed interfaces) and the §3.2 headline (remote peering
// at >90% of the studied IXPs).
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Table 1 - properties of the 22 IXPs in the measurement study",
      "Table 1; filters discard 20/82/20/100/28/5 of ~4,700 probed, leaving "
      "4,451 analyzed interfaces; remote peering at 91% of IXPs");

  const auto& world = bench::scenario();
  const auto& report = bench::spread_study().report();

  util::TextTable table({"IXP", "City", "Country", "Peak (Tbps)", "Members",
                         "Probed", "Analyzed", "Remote"});
  for (const auto& row : report.rows()) {
    const auto& ixp = world.ecosystem().ixp(row.ixp_id);
    table.add_row({
        ixp.acronym(),
        ixp.city().name,
        ixp.city().country,
        ixp.peak_traffic_tbps() < 0 ? "N/A"
                                    : util::fmt_double(ixp.peak_traffic_tbps(), 2),
        std::to_string(ixp.member_count()),
        std::to_string(row.probed),
        std::to_string(row.analyzed),
        std::to_string(row.remote_interfaces),
    });
  }
  table.render(std::cout);

  std::cout << "\nFilter discards (pipeline order):\n";
  const auto discards = report.total_discards();
  std::size_t total_discards = 0;
  for (std::size_t f = 0; f < measure::kFilterCount; ++f) {
    std::cout << "  " << to_string(static_cast<measure::Filter>(f)) << ": "
              << discards[f] << "\n";
    total_discards += discards[f];
  }
  std::cout << "  total discarded: " << total_discards << " of "
            << report.total_probed() << " probed\n";
  std::cout << "\nanalyzed interfaces: " << report.total_analyzed()
            << "  (paper: 4,451)\n";
  std::cout << "IXPs with remote peering detected: "
            << util::fmt_percent(report.ixps_with_remote_fraction())
            << " of " << report.rows().size() << "  (paper: 91%)\n";
  return 0;
}

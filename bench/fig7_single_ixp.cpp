// Regenerates Fig. 7: the offload potential when the vantage reaches a
// single IXP, for each of the ten best IXPs, under the four peer groups.
// Paper: AMS-IX, LINX, DE-CIX lead with similar potentials (overlapping
// memberships); Terremark differs through its Latin-American membership.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 7 - offload potential at a single IXP (top 10), four peer groups",
      "big European trio similar; Terremark distinct via Latin-American "
      "members; potentials up to ~1.6 Gbps for RedIRIS");

  const auto& analyzer = bench::offload_study().analyzer();
  const auto& eco = bench::scenario().ecosystem();

  struct Entry {
    ixp::IxpId id;
    std::string acronym;
    double group_bps[4];
  };
  std::vector<Entry> entries;
  for (const auto& ixp : eco.ixps()) {
    Entry entry{ixp.id(), ixp.acronym(), {0, 0, 0, 0}};
    const std::vector<ixp::IxpId> just_this{ixp.id()};
    int g = 0;
    for (auto group : {offload::PeerGroup::kOpen,
                       offload::PeerGroup::kOpenTop10Selective,
                       offload::PeerGroup::kOpenSelective,
                       offload::PeerGroup::kAll}) {
      entry.group_bps[g++] =
          analyzer.potential_at(just_this, group).total_bps();
    }
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.group_bps[3] > b.group_bps[3];
  });
  if (entries.size() > 10) entries.resize(10);

  util::TextTable table({"IXP", "all policies", "open+selective",
                         "open+top10 sel.", "open only"});
  for (const auto& entry : entries) {
    table.add_row({entry.acronym, util::fmt_rate_bps(entry.group_bps[3]),
                   util::fmt_rate_bps(entry.group_bps[2]),
                   util::fmt_rate_bps(entry.group_bps[1]),
                   util::fmt_rate_bps(entry.group_bps[0])});
  }
  table.render(std::cout);

  std::cout << "\n(paper's top-10: AMS-IX, LINX, DE-CIX, Terremark, SFINX, "
               "Netnod, CoreSite, TIE, NL-ix, PTT)\n";
  return 0;
}

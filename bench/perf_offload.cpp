// Microbenchmarks of the §4 offload hot paths: analyzer construction, the
// greedy IXP expansion (Fig. 9), and point-queries of the offload potential.
// Arg(0) runs whatever scale RP_BENCH_FAST selects; the shared world is the
// same one the fig5-fig10 harnesses use, so these numbers track the real
// pipeline.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "perf_json.hpp"

#if __has_include("util/thread_pool.hpp")
#include "util/thread_pool.hpp"
#define RP_HAVE_THREAD_POOL 1
#endif

namespace {

using namespace rp;

void set_thread_counter(benchmark::State& state) {
#ifdef RP_HAVE_THREAD_POOL
  state.counters["rp_threads"] =
      static_cast<double>(util::ThreadPool::global().thread_count());
#else
  state.counters["rp_threads"] = 1.0;
#endif
}

void BM_AnalyzerConstruction(benchmark::State& state) {
  const auto& study = bench::offload_study();
  const auto& world = bench::scenario();
  const offload::AnalyzerConfig config = study.study_config().analyzer;
  for (auto _ : state) {
    offload::OffloadAnalyzer analyzer(world.graph(), world.ecosystem(),
                                      world.vantage(), study.matrix(),
                                      study.rib(), config);
    benchmark::DoNotOptimize(analyzer);
    state.counters["eligible"] =
        static_cast<double>(analyzer.eligible_peers().size());
  }
  set_thread_counter(state);
}
BENCHMARK(BM_AnalyzerConstruction)->Unit(benchmark::kMillisecond);

void BM_GreedyByTraffic(benchmark::State& state) {
  const auto& analyzer = bench::offload_study().analyzer();
  for (auto _ : state) {
    const auto steps =
        analyzer.greedy_by_traffic(offload::PeerGroup::kAll, 30);
    benchmark::DoNotOptimize(steps);
    state.counters["steps"] = static_cast<double>(steps.size());
  }
  set_thread_counter(state);
}
BENCHMARK(BM_GreedyByTraffic)->Unit(benchmark::kMillisecond);

void BM_GreedyByAddresses(benchmark::State& state) {
  const auto& analyzer = bench::offload_study().analyzer();
  for (auto _ : state) {
    const auto steps =
        analyzer.greedy_by_addresses(offload::PeerGroup::kOpenSelective, 30);
    benchmark::DoNotOptimize(steps);
  }
  set_thread_counter(state);
}
BENCHMARK(BM_GreedyByAddresses)->Unit(benchmark::kMillisecond);

void BM_PotentialAt(benchmark::State& state) {
  const auto& analyzer = bench::offload_study().analyzer();
  const auto everywhere = analyzer.all_ixps();
  for (auto _ : state) {
    const auto p =
        analyzer.potential_at(everywhere, offload::PeerGroup::kAll);
    benchmark::DoNotOptimize(p);
  }
  set_thread_counter(state);
}
BENCHMARK(BM_PotentialAt)->Unit(benchmark::kMillisecond);

void BM_RemainingPotentialAt(benchmark::State& state) {
  const auto& analyzer = bench::offload_study().analyzer();
  const auto everywhere = analyzer.all_ixps();
  if (everywhere.size() < 2) {
    state.SkipWithError("need at least two IXPs");
    return;
  }
  const std::vector<ixp::IxpId> reached{everywhere[0]};
  for (auto _ : state) {
    const auto p = analyzer.remaining_potential_at(
        everywhere[1], reached, offload::PeerGroup::kAll);
    benchmark::DoNotOptimize(p);
  }
  set_thread_counter(state);
}
BENCHMARK(BM_RemainingPotentialAt)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rp::bench::run_benchmarks_with_json(argc, argv, "perf_offload");
}

// Regenerates the §3.3 validation and the DESIGN.md method ablations:
//   * classifier vs simulator ground truth (the TorIX-style confirmation),
//   * the RTT cross-check (paper: mean 0.3 ms, variance 1.6 ms^2 against
//     the TorIX route-server measurements),
//   * remoteness-threshold sweep (paper fixed 10 ms after manual checks),
//   * per-filter ablation: disable each filter and measure the damage.
#include <iostream>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Validation - classifier vs ground truth, threshold and filter "
      "ablations",
      "TorIX confirmed every detected remote peer; RTT cross-check mean "
      "0.3 ms, variance 1.6 ms^2");

  const auto& study = bench::spread_study();
  const auto& report = study.report();

  // --- Confusion matrix ----------------------------------------------------
  const auto& v = report.validation();
  std::cout << "confusion matrix over " << report.total_analyzed()
            << " analyzed interfaces:\n";
  std::cout << "  true positives (remote, classified remote):  "
            << v.true_positives << "\n";
  std::cout << "  false positives (direct, classified remote): "
            << v.false_positives << "\n";
  std::cout << "  true negatives:                              "
            << v.true_negatives << "\n";
  std::cout << "  false negatives (remote, classified direct): "
            << v.false_negatives << "\n";
  std::cout << "  precision " << util::fmt_double(v.precision(), 4)
            << ", recall " << util::fmt_double(v.recall(), 4) << "\n";
  std::cout << "\nRTT cross-check vs ground-truth circuit delay "
               "(min RTT minus 2x one-way):\n";
  std::cout << "  mean " << util::fmt_double(v.rtt_error_mean_ms, 2)
            << " ms, variance "
            << util::fmt_double(v.rtt_error_variance_ms2, 2)
            << " ms^2, median " << util::fmt_double(v.rtt_error_median_ms, 2)
            << " ms, p90 |err| "
            << util::fmt_double(v.rtt_error_p90_abs_ms, 2) << " ms\n";
  if (v.rs_compared_interfaces > 0) {
    std::cout << "\nroute-server cross-check (LG min RTT minus route-server "
                 "min RTT,\nthe §3.3 TorIX validation):\n";
    std::cout << "  " << v.rs_compared_interfaces
              << " interfaces compared, mean "
              << util::fmt_double(v.rs_diff_mean_ms, 2) << " ms, variance "
              << util::fmt_double(v.rs_diff_variance_ms2, 2)
              << " ms^2  (paper: 0.3 ms / 1.6 ms^2)\n";
  }

  // --- Threshold ablation ---------------------------------------------------
  std::cout << "\nremoteness-threshold sweep:\n";
  util::TextTable sweep({"threshold (ms)", "classified remote", "precision",
                         "recall"});
  for (double threshold_ms : {2.0, 5.0, 8.0, 10.0, 15.0, 20.0, 50.0}) {
    core::SpreadStudyConfig config = study.study_config();
    config.classifier.remoteness_threshold =
        util::SimDuration::from_millis_f(threshold_ms);
    const auto reanalyzed =
        core::SpreadStudy::reanalyze(study.raw_measurements(), config);
    const auto& rv = reanalyzed.report().validation();
    sweep.add_row({util::fmt_double(threshold_ms, 0),
                   std::to_string(rv.true_positives + rv.false_positives),
                   util::fmt_double(rv.precision(), 4),
                   util::fmt_double(rv.recall(), 4)});
  }
  sweep.render(std::cout);
  std::cout << "(the paper picks 10 ms: high enough that no direct peer "
               "exceeds it -> no false positives)\n";

  // --- Filter ablation --------------------------------------------------------
  std::cout << "\nfilter ablation (disable one filter at a time):\n";
  util::TextTable ablation({"disabled filter", "analyzed", "precision",
                            "recall"});
  {
    const auto& base = report;
    ablation.add_row({"(none)", std::to_string(base.total_analyzed()),
                      util::fmt_double(base.validation().precision(), 4),
                      util::fmt_double(base.validation().recall(), 4)});
  }
  for (std::size_t f = 0; f < measure::kFilterCount; ++f) {
    core::SpreadStudyConfig config = study.study_config();
    config.filters.enabled[f] = false;
    const auto reanalyzed =
        core::SpreadStudy::reanalyze(study.raw_measurements(), config);
    const auto& r = reanalyzed.report();
    ablation.add_row({to_string(static_cast<measure::Filter>(f)),
                      std::to_string(r.total_analyzed()),
                      util::fmt_double(r.validation().precision(), 4),
                      util::fmt_double(r.validation().recall(), 4)});
  }
  ablation.render(std::cout);
  std::cout << "(each filter guards against the artefact it was designed "
               "for; disabling it admits polluted interfaces)\n";
  return 0;
}

// Shared scaffolding for the bench harnesses.
//
// Every fig*/table* binary regenerates one artefact of the paper's
// evaluation on the same deterministic world. The world is built at "paper
// scale" by default (~3,200 ASes, 65 IXPs, Table-1-sized probe sets); set
// RP_BENCH_FAST=1 in the environment to shrink everything ~10x for smoke
// runs. Studies are cached per process so a binary that needs both the
// spread and offload results builds the scenario once.
#pragma once

#include <string>

#include "core/offload_study.hpp"
#include "core/scenario.hpp"
#include "core/spread_study.hpp"
#include "core/viability_study.hpp"

namespace rp::bench {

/// True when RP_BENCH_FAST is set to a non-empty, non-"0" value.
bool fast_mode();

/// The scenario configuration used by all benches (seeded with 2014).
core::ScenarioConfig scenario_config();

/// The shared world (built on first use).
const core::Scenario& scenario();

/// The §3 study on the shared world (run on first use).
const core::SpreadStudy& spread_study();

/// The §4 study on the shared world (run on first use).
const core::OffloadStudy& offload_study();

/// Prints a standard header naming the paper artefact being regenerated.
void print_header(const std::string& artefact, const std::string& paper_note);

}  // namespace rp::bench

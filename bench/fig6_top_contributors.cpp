// Regenerates Fig. 6: the top-30 contributors to the maximal offload
// potential, with each network's origin/destination (endpoint) traffic
// split from its transient traffic. Paper: the top contributors are content
// networks and CDNs, and for most of them endpoint traffic dominates
// transient traffic.
#include <iostream>

#include "common.hpp"
#include "topology/as_node.hpp"
#include "util/table.hpp"

int main() {
  using namespace rp;
  bench::print_header(
      "Fig. 6 - origin/destination vs transient traffic of the top-30 "
      "contributors",
      "top contributors include content providers and CDNs; endpoint "
      "traffic dominates transient for a majority");

  const auto& study = bench::offload_study();
  const auto rows =
      study.analyzer().top_contributors(30, offload::PeerGroup::kAll);
  const auto& graph = bench::scenario().graph();

  util::TextTable table({"#", "network", "class", "endpoint in",
                         "endpoint out", "transient in", "transient out"});
  std::size_t endpoint_dominated = 0;
  std::size_t content_or_cdn = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto cls = graph.node(row.asn).cls;
    table.add_row({
        std::to_string(i + 1),
        row.name,
        to_string(cls),
        util::fmt_rate_bps(row.endpoint_inbound_bps),
        util::fmt_rate_bps(row.endpoint_outbound_bps),
        util::fmt_rate_bps(row.transient_inbound_bps),
        util::fmt_rate_bps(row.transient_outbound_bps),
    });
    const double endpoint =
        row.endpoint_inbound_bps + row.endpoint_outbound_bps;
    const double transient =
        row.transient_inbound_bps + row.transient_outbound_bps;
    if (endpoint > transient) ++endpoint_dominated;
    if (cls == topology::AsClass::kContent || cls == topology::AsClass::kCdn)
      ++content_or_cdn;
  }
  table.render(std::cout);

  std::cout << "\ncontributors where endpoint traffic dominates transient: "
            << endpoint_dominated << " of " << rows.size()
            << "  (paper: a majority)\n";
  std::cout << "content/CDN networks among the top-30: " << content_or_cdn
            << "  (paper: Microsoft, Yahoo, CDNs feature heavily)\n";
  return 0;
}

// Microbenchmarks of the topology substrate: generation and customer-cone
// computation at several ecosystem sizes.
#include <benchmark/benchmark.h>

#include "topology/generator.hpp"

namespace {

using namespace rp;

topology::GeneratorConfig sized(int scale) {
  topology::GeneratorConfig config;
  config.tier1_count = 6;
  config.tier2_count = 20 * scale;
  config.access_count = 100 * scale;
  config.content_count = 30 * scale;
  config.cdn_count = 5;
  config.nren_count = 8;
  config.enterprise_count = 100 * scale;
  return config;
}

void BM_GenerateTopology(benchmark::State& state) {
  const auto config = sized(static_cast<int>(state.range(0)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    auto graph = topology::generate_topology(config, rng);
    benchmark::DoNotOptimize(graph);
    state.counters["ases"] = static_cast<double>(graph.as_count());
  }
}
BENCHMARK(BM_GenerateTopology)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CustomerCones(benchmark::State& state) {
  util::Rng rng(7);
  const auto graph =
      topology::generate_topology(sized(static_cast<int>(state.range(0))), rng);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& node : graph.nodes())
      total += graph.customer_cone(node.asn).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.as_count()));
}
BENCHMARK(BM_CustomerCones)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ConeAddressCount(benchmark::State& state) {
  util::Rng rng(8);
  const auto graph = topology::generate_topology(sized(2), rng);
  net::Asn tier1;
  for (const auto& node : graph.nodes())
    if (node.cls == topology::AsClass::kTier1) {
      tier1 = node.asn;
      break;
    }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.cone_address_count(tier1));
  }
}
BENCHMARK(BM_ConeAddressCount);

}  // namespace

BENCHMARK_MAIN();
